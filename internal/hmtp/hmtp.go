// Package hmtp implements the Host Multicast Tree Protocol baseline the
// paper compares VDM against (Zhang, Jamin, Zhang — "Host multicast: a
// framework for delivering multicast to end users", INFOCOM 2002), as
// described in the dissertation: a newcomer iteratively descends toward
// the closest child until no child is closer than the currently queried
// node, attaches there, and afterwards relies on mandatory periodic
// refinement — each round re-runs the join from a random node on the root
// path and switches to the found parent when it is closer than the current
// one.
package hmtp

import (
	"vdm/internal/overlay"
	"vdm/internal/rng"
)

// Config tunes an HMTP node.
type Config struct {
	// RefinePeriodS is the period of the mandatory refinement process
	// (30 s in the paper's PlanetLab runs); zero selects 30 s.
	RefinePeriodS float64
	// SwitchMargin is the relative improvement a refinement candidate
	// must offer before the node switches parents, damping oscillation;
	// zero selects 2%.
	SwitchMargin float64
	// MaxAttempts bounds join restarts; zero selects 5.
	MaxAttempts int
	// RetryBackoffS is the pause after MaxAttempts failures; zero
	// selects 5 s.
	RetryBackoffS float64
}

func (c Config) withDefaults() Config {
	if c.RefinePeriodS <= 0 {
		c.RefinePeriodS = 30
	}
	if c.SwitchMargin <= 0 {
		c.SwitchMargin = 0.02
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 5
	}
	if c.RetryBackoffS <= 0 {
		c.RetryBackoffS = 5
	}
	return c
}

type purpose int

const (
	purposeJoin purpose = iota
	purposeReconnect
	purposeRefine
)

type stage int

const (
	stageInfo stage = iota
	stageProbe
	stageConn
)

type joinState struct {
	purpose  purpose
	stage    stage
	token    int
	target   overlay.NodeID
	sentAt   float64
	dTarget  float64
	children []overlay.ChildInfo
	dists    overlay.ProbeResult
	visited  map[overlay.NodeID]bool
	attempts int
}

// Node is one HMTP peer.
type Node struct {
	*overlay.Peer
	cfg         Config
	rnd         *rng.Stream
	join        *joinState
	token       int
	refineArmed bool
}

var _ overlay.Protocol = (*Node)(nil)

// New builds an HMTP node. rnd drives refinement timing and root-path
// sampling.
func New(net overlay.Bus, pc overlay.PeerConfig, cfg Config, rnd *rng.Stream) *Node {
	n := &Node{
		Peer: overlay.NewPeer(net, pc),
		cfg:  cfg.withDefaults(),
		rnd:  rnd,
	}
	n.Peer.SetHooks(n)
	return n
}

// Base returns the shared peer state.
func (n *Node) Base() *overlay.Peer { return n.Peer }

// Joining reports whether a join procedure is in flight.
func (n *Node) Joining() bool { return n.join != nil }

// StartJoin begins the join procedure at the source.
func (n *Node) StartJoin() {
	if n.IsSource() || !n.Alive() {
		return
	}
	n.MarkJoinStart()
	n.begin(purposeJoin, n.Source())
}

// HandleProtocol consumes join-procedure responses.
func (n *Node) HandleProtocol(from overlay.NodeID, m overlay.Message) {
	switch msg := m.(type) {
	case overlay.InfoResponse:
		n.onInfoResponse(from, msg)
	case overlay.ConnResponse:
		n.onConnResponse(from, msg)
	}
}

// OnOrphaned reconnects starting at the grandparent, as VDM does — the
// dissertation measures both protocols with the same recovery rule.
func (n *Node) OnOrphaned(leaver, hint overlay.NodeID) {
	if n.join != nil && n.join.purpose == purposeRefine {
		n.EndSwitch()
		n.join = nil
	}
	start := hint
	if start == overlay.None || start == leaver || start == n.ID() {
		start = n.Source()
	}
	n.begin(purposeReconnect, start)
}

func (n *Node) begin(p purpose, target overlay.NodeID) { n.beginWith(p, target, 0) }

func (n *Node) beginWith(p purpose, target overlay.NodeID, attempts int) {
	js := &joinState{
		purpose:  p,
		visited:  make(map[overlay.NodeID]bool),
		dists:    make(overlay.ProbeResult),
		attempts: attempts,
	}
	n.join = js
	n.sendInfo(js, target)
}

func (n *Node) sendInfo(js *joinState, target overlay.NodeID) {
	js.stage = stageInfo
	js.target = target
	js.visited[target] = true
	js.sentAt = n.Now()
	n.token++
	js.token = n.token
	n.Net().Send(n.ID(), target, overlay.InfoRequest{Token: js.token})

	tok := js.token
	n.Net().After(n.InfoTimeoutS, func() {
		if n.join == js && js.stage == stageInfo && js.token == tok {
			n.onTargetUnusable(js)
		}
	})
}

func (n *Node) onTargetUnusable(js *joinState) {
	switch {
	case js.purpose == purposeRefine:
		n.join = nil
	case js.purpose == purposeReconnect && js.target != n.Source():
		n.sendInfo(js, n.Source())
	default:
		n.restart(js)
	}
}

func (n *Node) onInfoResponse(from overlay.NodeID, m overlay.InfoResponse) {
	js := n.join
	if js == nil || js.stage != stageInfo || js.token != m.Token || js.target != from {
		return
	}
	if !m.Connected && from != n.Source() {
		n.onTargetUnusable(js)
		return
	}
	js.dTarget = n.Measure(from, (n.Now()-js.sentAt)*1000)
	js.dists[from] = js.dTarget

	js.children = js.children[:0]
	var ids []overlay.NodeID
	for _, ci := range m.Children {
		if ci.ID == n.ID() {
			continue
		}
		js.children = append(js.children, ci)
		ids = append(ids, ci.ID)
	}
	if len(ids) == 0 {
		n.connect(js, js.target)
		return
	}
	js.stage = stageProbe
	tok := js.token
	n.Prober().Launch(ids, n.ProbeTimeoutS, func(res overlay.ProbeResult) {
		if n.join == js && js.stage == stageProbe && js.token == tok {
			for id, d := range res {
				js.dists[id] = d
			}
			n.decide(js, res)
		}
	})
}

// decide implements HMTP's closeness rule: descend into the closest child
// when it is strictly closer than the queried node, otherwise attach here.
func (n *Node) decide(js *joinState, res overlay.ProbeResult) {
	best := overlay.None
	bd := 0.0
	for _, ci := range js.children {
		d, ok := res[ci.ID]
		if !ok || js.visited[ci.ID] {
			continue
		}
		if best == overlay.None || d < bd || (d == bd && ci.ID < best) {
			best, bd = ci.ID, d
		}
	}
	if best != overlay.None && bd < js.dTarget {
		n.sendInfo(js, best)
		return
	}
	n.connect(js, js.target)
}

func (n *Node) connect(js *joinState, to overlay.NodeID) {
	if js.purpose == purposeRefine {
		cur := n.ParentID()
		d, ok := js.dists[to]
		if to == cur || cur == overlay.None || !ok ||
			d >= n.ParentDist()*(1-n.cfg.SwitchMargin) {
			n.join = nil
			return
		}
		n.BeginSwitch()
	}
	js.stage = stageConn
	js.target = to
	n.token++
	js.token = n.token
	dist := js.dTarget
	if d, ok := js.dists[to]; ok {
		dist = d
	}
	n.Net().Send(n.ID(), to, overlay.ConnRequest{
		Token: js.token,
		Kind:  overlay.ConnChild,
		Dist:  dist,
	})

	tok := js.token
	n.Net().After(n.ConnTimeoutS, func() {
		if n.join == js && js.stage == stageConn && js.token == tok {
			if js.purpose == purposeRefine {
				n.EndSwitch()
				n.join = nil
				return
			}
			n.restart(js)
		}
	})
}

func (n *Node) onConnResponse(from overlay.NodeID, m overlay.ConnResponse) {
	js := n.join
	if js == nil || js.stage != stageConn || js.token != m.Token || js.target != from {
		return
	}
	dist := js.dTarget
	if d, ok := js.dists[from]; ok {
		dist = d
	}
	if m.Accepted {
		if js.purpose == purposeRefine {
			n.ApplySwitch(from, dist, m.RootPath)
			n.EndSwitch()
			n.join = nil
			return
		}
		n.ApplyConnect(from, dist, m.RootPath)
		n.join = nil
		n.armRefine()
		return
	}
	if js.purpose == purposeRefine {
		n.EndSwitch()
		n.join = nil
		return
	}
	// Degree-saturated: flag this node and go for the next available
	// child, descending a level (figure 2.8 of the dissertation).
	var cands []overlay.NodeID
	for _, ci := range m.Children {
		if ci.ID != n.ID() && !js.visited[ci.ID] {
			cands = append(cands, ci.ID)
		}
	}
	if len(cands) == 0 {
		n.restart(js)
		return
	}
	js.stage = stageProbe
	n.token++
	js.token = n.token
	tok := js.token
	n.Prober().Launch(cands, n.ProbeTimeoutS, func(res overlay.ProbeResult) {
		if n.join != js || js.stage != stageProbe || js.token != tok {
			return
		}
		best := overlay.None
		bd := 0.0
		for _, id := range cands {
			d, ok := res[id]
			if !ok {
				continue
			}
			js.dists[id] = d
			if best == overlay.None || d < bd || (d == bd && id < best) {
				best, bd = id, d
			}
		}
		if best == overlay.None {
			n.restart(js)
			return
		}
		n.sendInfo(js, best)
	})
}

func (n *Node) restart(js *joinState) {
	attempts := js.attempts + 1
	n.join = nil
	if js.purpose == purposeRefine {
		return
	}
	if attempts >= n.cfg.MaxAttempts {
		n.Net().After(n.cfg.RetryBackoffS, func() {
			if n.Alive() && !n.Connected() && n.join == nil {
				n.beginWith(js.purpose, n.Source(), 0)
			}
		})
		return
	}
	n.beginWith(js.purpose, n.Source(), attempts)
}

// armRefine starts HMTP's mandatory periodic refinement after the first
// successful connection.
func (n *Node) armRefine() {
	if n.refineArmed {
		return
	}
	n.refineArmed = true
	n.scheduleRefine()
}

func (n *Node) scheduleRefine() {
	period := n.cfg.RefinePeriodS
	if n.rnd != nil {
		period *= n.rnd.Uniform(0.9, 1.1)
	}
	n.Net().After(period, func() {
		if !n.Alive() {
			return
		}
		if n.Connected() && n.join == nil && !n.Switching() {
			n.begin(purposeRefine, n.refineStart())
		}
		n.scheduleRefine()
	})
}

// refineStart picks a random node on the root path — HMTP re-runs the join
// from there to discover closer peers that arrived since.
func (n *Node) refineStart() overlay.NodeID {
	path := n.RootPath()
	if len(path) == 0 || n.rnd == nil {
		return n.Source()
	}
	return path[n.rnd.Intn(len(path))]
}
