// Package topology builds and queries the router-level underlay used by the
// chapter-3/4 simulations: a GT-ITM-style transit-stub graph with weighted
// links, shortest-path routing, and host attachment points.
package topology

import (
	"fmt"
	"math"
)

// RouterID identifies a router in the underlay graph.
type RouterID int

// LinkID identifies an undirected physical link. Links are the unit that
// the stress metric counts duplicate transmissions on.
type LinkID int

// Link is an undirected weighted edge between two routers.
type Link struct {
	ID       LinkID
	A, B     RouterID
	DelayMS  float64 // one-way propagation delay in milliseconds
	LossRate float64 // Bernoulli per-traversal drop probability
}

// Graph is an undirected weighted router graph.
type Graph struct {
	links []Link
	adj   [][]halfEdge // adjacency: per router, outgoing half-edges
}

type halfEdge struct {
	to   RouterID
	link LinkID
}

// NewGraph returns a graph with n routers and no links.
func NewGraph(n int) *Graph {
	return &Graph{adj: make([][]halfEdge, n)}
}

// NumRouters reports the number of routers.
func (g *Graph) NumRouters() int { return len(g.adj) }

// NumLinks reports the number of undirected links.
func (g *Graph) NumLinks() int { return len(g.links) }

// Link returns the link with the given id.
func (g *Graph) Link(id LinkID) Link { return g.links[id] }

// Links returns all links. The returned slice must not be modified.
func (g *Graph) Links() []Link { return g.links }

// Degree reports the number of links incident to r.
func (g *Graph) Degree(r RouterID) int { return len(g.adj[r]) }

// HasEdge reports whether an a–b link already exists.
func (g *Graph) HasEdge(a, b RouterID) bool {
	for _, he := range g.adj[a] {
		if he.to == b {
			return true
		}
	}
	return false
}

// AddLink adds an undirected link between a and b and returns its id.
// Self-loops and duplicate edges are rejected.
func (g *Graph) AddLink(a, b RouterID, delayMS float64) (LinkID, error) {
	if a == b {
		return 0, fmt.Errorf("topology: self-loop at router %d", a)
	}
	if int(a) < 0 || int(a) >= len(g.adj) || int(b) < 0 || int(b) >= len(g.adj) {
		return 0, fmt.Errorf("topology: link %d-%d out of range", a, b)
	}
	if g.HasEdge(a, b) {
		return 0, fmt.Errorf("topology: duplicate link %d-%d", a, b)
	}
	id := LinkID(len(g.links))
	g.links = append(g.links, Link{ID: id, A: a, B: b, DelayMS: delayMS})
	g.adj[a] = append(g.adj[a], halfEdge{to: b, link: id})
	g.adj[b] = append(g.adj[b], halfEdge{to: a, link: id})
	return id, nil
}

// SetLinkLoss assigns a Bernoulli loss rate to the link.
func (g *Graph) SetLinkLoss(id LinkID, p float64) {
	g.links[id].LossRate = p
}

// Connected reports whether the graph is a single connected component.
func (g *Graph) Connected() bool {
	if len(g.adj) == 0 {
		return true
	}
	seen := make([]bool, len(g.adj))
	stack := []RouterID{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		r := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, he := range g.adj[r] {
			if !seen[he.to] {
				seen[he.to] = true
				count++
				stack = append(stack, he.to)
			}
		}
	}
	return count == len(g.adj)
}

// SPT is a shortest-path tree rooted at one router: distances (one-way, ms)
// and, for path reconstruction, the predecessor link of every router.
type SPT struct {
	Root     RouterID
	DistMS   []float64
	prevLink []LinkID
	prevHop  []RouterID
}

// ShortestPaths runs Dijkstra from root over link delays.
func (g *Graph) ShortestPaths(root RouterID) *SPT {
	n := len(g.adj)
	t := &SPT{
		Root:     root,
		DistMS:   make([]float64, n),
		prevLink: make([]LinkID, n),
		prevHop:  make([]RouterID, n),
	}
	for i := range t.DistMS {
		t.DistMS[i] = math.Inf(1)
		t.prevLink[i] = -1
		t.prevHop[i] = -1
	}
	t.DistMS[root] = 0

	pq := &distHeap{}
	pq.push(distItem{r: root, d: 0})
	done := make([]bool, n)
	for pq.len() > 0 {
		it := pq.pop()
		if done[it.r] {
			continue
		}
		done[it.r] = true
		for _, he := range g.adj[it.r] {
			nd := it.d + g.links[he.link].DelayMS
			if nd < t.DistMS[he.to] {
				t.DistMS[he.to] = nd
				t.prevLink[he.to] = he.link
				t.prevHop[he.to] = it.r
				pq.push(distItem{r: he.to, d: nd})
			}
		}
	}
	return t
}

// PathLinks returns the link ids along the shortest path from the tree root
// to dst, in dst-to-root order. It returns nil when dst is unreachable or
// is the root itself.
func (t *SPT) PathLinks(dst RouterID) []LinkID {
	if math.IsInf(t.DistMS[dst], 1) || dst == t.Root {
		return nil
	}
	var out []LinkID
	for r := dst; r != t.Root; r = t.prevHop[r] {
		out = append(out, t.prevLink[r])
	}
	return out
}

// HopCount returns the number of links on the shortest path root→dst,
// or -1 when unreachable.
func (t *SPT) HopCount(dst RouterID) int {
	if math.IsInf(t.DistMS[dst], 1) {
		return -1
	}
	n := 0
	for r := dst; r != t.Root; r = t.prevHop[r] {
		n++
	}
	return n
}

// distHeap is a minimal binary heap specialized for Dijkstra, avoiding
// container/heap interface overhead on the hot path.
type distItem struct {
	r RouterID
	d float64
}

type distHeap struct{ a []distItem }

func (h *distHeap) len() int { return len(h.a) }

func (h *distHeap) push(it distItem) {
	h.a = append(h.a, it)
	i := len(h.a) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.a[p].d <= h.a[i].d {
			break
		}
		h.a[p], h.a[i] = h.a[i], h.a[p]
		i = p
	}
}

func (h *distHeap) pop() distItem {
	top := h.a[0]
	last := len(h.a) - 1
	h.a[0] = h.a[last]
	h.a = h.a[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(h.a) && h.a[l].d < h.a[small].d {
			small = l
		}
		if r < len(h.a) && h.a[r].d < h.a[small].d {
			small = r
		}
		if small == i {
			break
		}
		h.a[i], h.a[small] = h.a[small], h.a[i]
		i = small
	}
	return top
}
