package overlay

// seqWindowBits is the number of recent sequence numbers tracked for
// duplicate suppression. Reordering beyond this window (minutes of stream
// at the paper's rates) is not observable in a tree overlay.
const seqWindowBits = 4096

// seqWindow is a sliding bitmap over recent chunk sequence numbers. It
// answers "is this sequence number new?" so duplicate chunks that arrive
// during a parent switch are neither double-counted nor re-forwarded.
type seqWindow struct {
	base  int64 // lowest tracked seq
	top   int64 // highest seq marked so far, exclusive
	bits  []uint64
	begun bool
}

func newSeqWindow() *seqWindow {
	return &seqWindow{bits: make([]uint64, seqWindowBits/64)}
}

// add marks seq as seen and reports whether it was new. Sequence numbers
// older than the window are treated as duplicates.
// backfill is how far below the first-seen sequence number the window
// still accepts chunks, absorbing reordering around a connect.
const backfill = 64

func (w *seqWindow) add(seq int64) bool {
	if !w.begun {
		w.begun = true
		w.base = seq - backfill
		w.top = seq
	}
	if seq < w.base {
		return false
	}
	if seq >= w.base+seqWindowBits {
		// Slide forward so seq is the newest trackable entry.
		newBase := seq - seqWindowBits + 1
		for s := w.base; s < newBase; s++ {
			w.clear(s)
		}
		w.base = newBase
	}
	if w.get(seq) {
		return false
	}
	w.set(seq)
	if seq >= w.top {
		w.top = seq + 1
	}
	return true
}

func (w *seqWindow) idx(seq int64) (int, uint64) {
	off := seq % seqWindowBits
	if off < 0 {
		off += seqWindowBits
	}
	return int(off / 64), 1 << uint(off%64)
}

func (w *seqWindow) get(seq int64) bool {
	i, m := w.idx(seq)
	return w.bits[i]&m != 0
}

func (w *seqWindow) set(seq int64) {
	i, m := w.idx(seq)
	w.bits[i] |= m
}

func (w *seqWindow) clear(seq int64) {
	i, m := w.idx(seq)
	w.bits[i] &^= m
}
