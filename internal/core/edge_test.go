package core

import (
	"testing"

	"vdm/internal/overlay"
	"vdm/internal/protocoltest"
)

// TestJoinWithAllChildrenDead: every child of the queried node has
// silently vanished; the probe comes back empty and the newcomer attaches
// to the queried node itself.
func TestJoinWithAllChildrenDead(t *testing.T) {
	r := newVDMRig(t, []protocoltest.Point{
		{X: 0, Y: 0}, {X: 10, Y: 0}, {X: 25, Y: 0},
	}, nil)
	r.joinAll(1)
	now := r.Sim.Now()
	// The child vanishes without notice but stays in the source's
	// children list until reaped.
	r.Sim.At(now+1, func() { r.Net.Unregister(1) })
	r.Sim.At(now+2, func() { r.nodes[2].StartJoin() })
	r.Run(now + 20)
	if got := r.parentOf(t, 2); got != 0 {
		t.Fatalf("parent = %d, want source (only live node)", got)
	}
}

// TestLeaveMidJoin: a node leaves while its own join is still in flight;
// nothing crashes and the target does not keep ghost state that blocks
// others.
func TestLeaveMidJoin(t *testing.T) {
	r := newVDMRig(t, []protocoltest.Point{
		{X: 0, Y: 0}, {X: 10, Y: 0}, {X: 25, Y: 0},
	}, []int{1, 4, 4})
	r.joinAll(1)
	now := r.Sim.Now()
	n := r.nodes[2]
	r.Sim.At(now+1, func() { n.StartJoin() })
	// Leave a hair after the join started, before it can complete.
	r.Sim.At(now+1.001, func() { n.Leave() })
	r.Run(now + 10)
	if n.Alive() || n.Connected() {
		t.Fatal("left node still alive/connected")
	}
	// The tree is still serviceable: a fresh node can join and reach
	// the spot the leaver would have taken.
	f := r.add(2, 4, Config{})
	r.Sim.At(r.Sim.Now()+1, func() { f.StartJoin() })
	r.Run(r.Sim.Now() + 20)
	if !f.Connected() {
		t.Fatal("fresh instance could not join")
	}
}

// TestStaleLeaveNotifyIgnored: a LeaveNotify from a node that is not the
// current parent must not orphan the peer.
func TestStaleLeaveNotifyIgnored(t *testing.T) {
	r := newVDMRig(t, []protocoltest.Point{
		{X: 0, Y: 0}, {X: 10, Y: 0}, {X: 20, Y: 0},
	}, nil)
	r.joinAll(1, 2)
	n := r.nodes[2]
	pre := n.ParentID()
	n.HandleMessage(99, overlay.LeaveNotify{GrandparentHint: 0})
	if !n.Connected() || n.ParentID() != pre {
		t.Fatal("stale leave notify orphaned the node")
	}
}

// TestConcurrentSpliceRace: two newcomers try to adopt the same child in
// overlapping windows; exactly one adoption wins and the tree stays
// consistent.
func TestConcurrentSpliceRace(t *testing.T) {
	// S=(0,0), C=(30,0) under S; N1=(14,0.5) and N2=(15,-0.5) both see
	// Case II with C and start at nearly the same instant.
	r := newVDMRig(t, []protocoltest.Point{
		{X: 0, Y: 0}, {X: 30, Y: 0}, {X: 14, Y: 0.5}, {X: 15, Y: -0.5},
	}, nil)
	r.joinAll(1)
	now := r.Sim.Now()
	r.Sim.At(now+1, func() { r.nodes[2].StartJoin() })
	r.Sim.At(now+1.001, func() { r.nodes[3].StartJoin() })
	r.Run(now + 30)

	// Everyone connected, exactly one parent each, and C reachable.
	for id := overlay.NodeID(1); id <= 3; id++ {
		if !r.nodes[id].Connected() {
			t.Fatalf("node %d not connected", id)
		}
	}
	// Walk C (node 1) to the source.
	cur, steps := overlay.NodeID(1), 0
	for cur != 0 {
		p := r.nodes[cur].ParentID()
		if p == overlay.None || steps > 4 {
			t.Fatalf("C detached (stuck at %d)", cur)
		}
		cur = p
		steps++
	}
	// Parent/child symmetry across all nodes.
	for id, n := range r.nodes {
		for _, c := range n.ChildIDs() {
			cn, ok := r.nodes[c]
			if !ok {
				continue
			}
			if cn.ParentID() != id {
				t.Fatalf("child %d of %d has parent %d", c, id, cn.ParentID())
			}
		}
	}
}

// TestGammaOneRejectsEverything: γ≈1 disables directionality entirely;
// everyone attaches as close to the source as degree allows (breadth-
// first-ish shallow tree).
func TestGammaOneRejectsEverything(t *testing.T) {
	pts := []protocoltest.Point{
		{X: 0, Y: 0}, {X: 10, Y: 0}, {X: 20, Y: 0}, {X: 30, Y: 0}, {X: 40, Y: 0},
	}
	r := newVDMRig(t, pts, []int{2, 2, 2, 2, 2})
	for _, n := range r.nodes {
		n.cfg.Gamma = 1.01 // longest can never reach γ·(sum of others)
	}
	r.joinAll(1, 2, 3, 4)
	// With γ>1 no Case II/III ever fires: nodes fill the source first.
	kids := r.nodes[0].ChildIDs()
	if len(kids) != 2 {
		t.Fatalf("source children %v, want a full degree-2 set", kids)
	}
	for id := overlay.NodeID(1); id <= 4; id++ {
		if !r.nodes[id].Connected() {
			t.Fatalf("node %d not connected", id)
		}
	}
}

// TestRefineDuringOrphanhoodSkipped: a refinement tick while orphaned must
// not fire a shadow join.
func TestRefineDuringOrphanhoodSkipped(t *testing.T) {
	r := newVDMRig(t, []protocoltest.Point{
		{X: 0, Y: 0}, {X: 10, Y: 0}, {X: 20, Y: 0},
	}, nil)
	b := r.nodes[2]
	b.cfg.RefinePeriodS = 3
	r.joinAll(1, 2)
	// Orphan b and freeze its reconnection by killing both ancestors
	// (grandparent times out → source: kill the source handler too so
	// b stays orphaned while refine ticks pass).
	now := r.Sim.Now()
	r.Sim.At(now+1, func() {
		r.nodes[1].Leave()
		r.Net.Unregister(0)
	})
	r.Run(now + 12)
	if b.Connected() {
		t.Fatal("unexpectedly connected with no live ancestors")
	}
	// No panic / no bogus parent switches happened while orphaned.
	if b.Base().Stats().ParentSwitch != 0 {
		t.Fatal("refinement ran while orphaned")
	}
}

// TestTwoNodesOnly: a session of just source + one peer works and the peer
// survives nothing else existing.
func TestTwoNodesOnly(t *testing.T) {
	r := newVDMRig(t, []protocoltest.Point{{X: 0, Y: 0}, {X: 10, Y: 10}}, nil)
	r.joinAll(1)
	if got := r.parentOf(t, 1); got != 0 {
		t.Fatalf("parent = %d", got)
	}
}
