package flow

import "math/bits"

// FEC group layout: the stream is cut into fixed groups of k consecutive
// sequence numbers aligned to multiples of k — group g covers seqs
// [g, g+k). The source emits one parity chunk per complete group: the
// byte-wise XOR of the k payloads (each padded with zeros to the longest)
// plus the XOR of their lengths, so a receiver holding any k-1 payloads
// and the parity can reconstruct the missing payload and its exact
// length. One parity repairs exactly one loss per group — the
// Reed–Solomon-lite tradeoff: 1/k overhead, single-erasure correction,
// trivial arithmetic.

// Parity is one parity chunk for FEC group Group (covering sequence
// numbers [Group, Group+K)): Data is the XOR of the group's payloads
// padded to the longest, XorLen the XOR of their lengths.
type Parity struct {
	Group  int64
	K      int
	XorLen uint32
	Data   []byte
}

// Recovered is a payload reconstructed from parity.
type Recovered struct {
	Seq     int64
	Payload []byte
}

// groupOf returns the FEC group (floor to a multiple of k) for seq.
func groupOf(seq int64, k int) int64 {
	g := seq / int64(k)
	if seq < 0 && seq%int64(k) != 0 {
		g--
	}
	return g * int64(k)
}

// Encoder accumulates outbound payloads and emits one Parity per
// complete group of k. It assumes the in-order source emission path:
// only one group is open at a time, and a group abandoned before
// completion (seq jump) simply never yields parity. Not safe for
// concurrent use.
type Encoder struct {
	k      int
	group  int64
	have   uint64
	xorLen uint32
	data   []byte
	active bool
}

// NewEncoder builds an encoder with group size k, clamped to [2, 64].
func NewEncoder(k int) *Encoder {
	if k < 2 {
		k = 2
	}
	if k > 64 {
		k = 64
	}
	return &Encoder{k: k}
}

// K returns the group size.
func (e *Encoder) K() int { return e.k }

// Add folds one payload into the current group and, when the group
// completes, returns its parity chunk (Data freshly allocated, safe to
// retain) and true.
func (e *Encoder) Add(seq int64, payload []byte) (Parity, bool) {
	g := groupOf(seq, e.k)
	if !e.active || g != e.group {
		e.group = g
		e.have = 0
		e.xorLen = 0
		e.data = e.data[:0]
		e.active = true
	}
	bit := uint64(1) << uint(seq-e.group)
	if e.have&bit != 0 {
		return Parity{}, false
	}
	e.have = e.have | bit
	e.data = xorInto(e.data, payload)
	e.xorLen ^= uint32(len(payload))
	if bits.OnesCount64(e.have) < e.k {
		return Parity{}, false
	}
	p := Parity{
		Group:  e.group,
		K:      e.k,
		XorLen: e.xorLen,
		Data:   append([]byte(nil), e.data...),
	}
	e.active = false
	return p, true
}

// xorInto folds src into acc byte-wise, growing acc to the longer of the
// two, and returns the (possibly reallocated) accumulator.
func xorInto(acc, src []byte) []byte {
	for len(acc) < len(src) {
		acc = append(acc, 0)
	}
	for i, b := range src {
		acc[i] ^= b
	}
	return acc
}

// Decoder tracks inbound payloads and parity per FEC group and
// reconstructs the single missing payload of a group once k-1 payloads
// and the parity are in hand. It bounds its memory to maxGroups open
// groups, evicting the oldest. Not safe for concurrent use.
type Decoder struct {
	k         int
	maxGroups int
	groups    map[int64]*decGroup
}

type decGroup struct {
	have   uint64
	n      int
	xorLen uint32
	data   []byte
	parity []byte
	pLen   uint32
	hasPar bool
	done   bool
}

// NewDecoder builds a decoder for group size k (clamped to [2, 64])
// keeping state for at most maxGroups concurrent groups (<= 0 means 64).
func NewDecoder(k, maxGroups int) *Decoder {
	if k < 2 {
		k = 2
	}
	if k > 64 {
		k = 64
	}
	if maxGroups <= 0 {
		maxGroups = 64
	}
	return &Decoder{k: k, maxGroups: maxGroups, groups: make(map[int64]*decGroup)}
}

// AddData folds one received payload into its group and returns a
// reconstructed missing payload if this completes a parity-assisted
// recovery.
func (d *Decoder) AddData(seq int64, payload []byte) (Recovered, bool) {
	g := d.ensure(groupOf(seq, d.k))
	if g == nil || g.done {
		return Recovered{}, false
	}
	bit := uint64(1) << uint(seq-groupOf(seq, d.k))
	if g.have&bit != 0 {
		return Recovered{}, false
	}
	g.have |= bit
	g.n++
	g.data = xorInto(g.data, payload)
	g.xorLen ^= uint32(len(payload))
	if g.n == d.k {
		// Complete without loss; parity (if any) is moot.
		g.done = true
		g.data = nil
		g.parity = nil
		return Recovered{}, false
	}
	return d.tryRecover(groupOf(seq, d.k), g)
}

// AddParity registers a parity chunk. recovered reports a reconstructed
// payload; fresh reports whether this parity was new for its group (the
// caller forwards fresh parity downstream and drops duplicates).
func (d *Decoder) AddParity(p Parity) (rec Recovered, recovered, fresh bool) {
	if p.K != d.k {
		return Recovered{}, false, false
	}
	g := d.ensure(p.Group)
	if g == nil || g.done || g.hasPar {
		return Recovered{}, false, false
	}
	g.hasPar = true
	g.parity = p.Data
	g.pLen = p.XorLen
	rec, recovered = d.tryRecover(p.Group, g)
	return rec, recovered, true
}

// tryRecover reconstructs the missing payload when exactly one group
// member is absent and parity is present.
func (d *Decoder) tryRecover(group int64, g *decGroup) (Recovered, bool) {
	if !g.hasPar || g.n != d.k-1 {
		return Recovered{}, false
	}
	mask := uint64(1)<<uint(d.k) - 1
	missing := ^g.have & mask
	idx := bits.TrailingZeros64(missing)
	plen := g.xorLen ^ g.pLen
	maxLen := len(g.data)
	if len(g.parity) > maxLen {
		maxLen = len(g.parity)
	}
	g.done = true
	if int(plen) > maxLen {
		// Inconsistent parity (corruption or mixed k); drop the group.
		g.data = nil
		g.parity = nil
		return Recovered{}, false
	}
	out := make([]byte, plen)
	for i := range out {
		var b byte
		if i < len(g.data) {
			b = g.data[i]
		}
		if i < len(g.parity) {
			b ^= g.parity[i]
		}
		out[i] = b
	}
	g.data = nil
	g.parity = nil
	return Recovered{Seq: group + int64(idx), Payload: out}, true
}

// ensure returns the state for group, creating it and evicting the
// oldest open group beyond the cap.
func (d *Decoder) ensure(group int64) *decGroup {
	if g, ok := d.groups[group]; ok {
		return g
	}
	if len(d.groups) >= d.maxGroups {
		oldest := int64(0)
		first := true
		for k := range d.groups {
			if first || k < oldest {
				oldest = k
				first = false
			}
		}
		delete(d.groups, oldest)
	}
	g := &decGroup{}
	d.groups[group] = g
	return g
}
