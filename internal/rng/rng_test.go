package rng

import (
	"testing"
	"testing/quick"
)

func TestSameSeedSameStream(t *testing.T) {
	a, b := New(17), New(17)
	for i := 0; i < 100; i++ {
		if a.Int63() != b.Int63() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestDeriveDeterministic(t *testing.T) {
	a := Derive(17, "churn")
	b := Derive(17, "churn")
	for i := 0; i < 50; i++ {
		if a.Int63() != b.Int63() {
			t.Fatal("derived stream not reproducible")
		}
	}
}

func TestDeriveNamesIndependent(t *testing.T) {
	a := Derive(17, "churn")
	b := Derive(17, "topology")
	same := 0
	for i := 0; i < 64; i++ {
		if a.Int63() == b.Int63() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d identical draws between differently named streams", same)
	}
}

func TestUniformRange(t *testing.T) {
	s := New(1)
	for i := 0; i < 1000; i++ {
		v := s.Uniform(2, 5)
		if v < 2 || v >= 5 {
			t.Fatalf("Uniform(2,5) = %v", v)
		}
	}
}

func TestIntBetweenInclusive(t *testing.T) {
	s := New(1)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := s.IntBetween(2, 5)
		if v < 2 || v > 5 {
			t.Fatalf("IntBetween(2,5) = %d", v)
		}
		seen[v] = true
	}
	for v := 2; v <= 5; v++ {
		if !seen[v] {
			t.Fatalf("IntBetween never produced %d", v)
		}
	}
}

func TestIntBetweenSwappedBounds(t *testing.T) {
	s := New(1)
	if v := s.IntBetween(5, 2); v < 2 || v > 5 {
		t.Fatalf("IntBetween(5,2) = %d", v)
	}
}

func TestBoolEdges(t *testing.T) {
	s := New(1)
	for i := 0; i < 100; i++ {
		if s.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !s.Bool(1.01) {
			t.Fatal("Bool(>1) returned false")
		}
	}
}

func TestBoolFrequency(t *testing.T) {
	s := New(1)
	hits := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if s.Bool(0.3) {
			hits++
		}
	}
	frac := float64(hits) / n
	if frac < 0.27 || frac > 0.33 {
		t.Fatalf("Bool(0.3) frequency %.3f", frac)
	}
}

func TestPickNDistinct(t *testing.T) {
	s := New(1)
	got := s.PickN(10, 20)
	if len(got) != 10 {
		t.Fatalf("PickN returned %d values", len(got))
	}
	seen := map[int]bool{}
	for _, v := range got {
		if v < 0 || v >= 20 {
			t.Fatalf("PickN value %d out of range", v)
		}
		if seen[v] {
			t.Fatalf("PickN duplicate %d", v)
		}
		seen[v] = true
	}
}

func TestPickNPanicsWhenTooMany(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1).PickN(5, 3)
}

func TestNormalMoments(t *testing.T) {
	s := New(1)
	const n = 50000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := s.Normal(10, 2)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if mean < 9.9 || mean > 10.1 {
		t.Fatalf("Normal mean %.3f", mean)
	}
	if variance < 3.6 || variance > 4.4 {
		t.Fatalf("Normal variance %.3f", variance)
	}
}

func TestLogNormalPositive(t *testing.T) {
	s := New(1)
	for i := 0; i < 1000; i++ {
		if v := s.LogNormal(0, 0.5); v <= 0 {
			t.Fatalf("LogNormal produced %v", v)
		}
	}
}

// Property: PickN always returns n distinct in-range indices.
func TestPropertyPickN(t *testing.T) {
	f := func(seed int64, a, b uint8) bool {
		total := int(a%50) + 1
		n := int(b) % (total + 1)
		got := New(seed).PickN(n, total)
		if len(got) != n {
			return false
		}
		seen := map[int]bool{}
		for _, v := range got {
			if v < 0 || v >= total || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
