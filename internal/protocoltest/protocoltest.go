// Package protocoltest provides the shared fixture protocol test suites
// (core, hmtp, btp, randjoin) drive their nodes with: a deterministic
// network over a static RTT matrix derived from 2-D host coordinates, so
// tests can place peers at exact virtual distances and reproduce the
// dissertation's join examples geometrically.
package protocoltest

import (
	"math"

	"vdm/internal/eventq"
	"vdm/internal/overlay"
	"vdm/internal/rng"
	"vdm/internal/underlay"
)

// Point is a host position in the 2-D virtual plane; RTT between hosts is
// their Euclidean distance in milliseconds.
type Point struct{ X, Y float64 }

// EuclidMatrix converts host coordinates into an RTT matrix.
func EuclidMatrix(points []Point) [][]float64 {
	n := len(points)
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n)
		for j := range m[i] {
			if i != j {
				m[i][j] = math.Hypot(points[i].X-points[j].X, points[i].Y-points[j].Y)
			}
		}
	}
	return m
}

// Rig is a ready-to-use simulated network over fixed host positions.
// Host 0 is the session source by convention.
type Rig struct {
	Sim *eventq.Sim
	U   *underlay.Static
	Net *overlay.Network
}

// New builds a rig over the given host positions.
func New(points []Point) *Rig {
	sim := eventq.New()
	u := underlay.NewStatic(EuclidMatrix(points))
	return &Rig{
		Sim: sim,
		U:   u,
		Net: overlay.NewNetwork(sim, u, rng.New(1)),
	}
}

// Run advances virtual time to t (absolute).
func (r *Rig) Run(t float64) { r.Sim.Run(t) }

// PeerConfig returns a standard peer config for host id.
func (r *Rig) PeerConfig(id overlay.NodeID, degree int) overlay.PeerConfig {
	return overlay.PeerConfig{
		ID:        id,
		Source:    0,
		MaxDegree: degree,
		IsSource:  id == 0,
	}
}
