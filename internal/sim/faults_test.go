package sim

import "testing"

// TestControlLossRobustness: with 5% of control messages dropped, every
// protocol's timeout/retry machinery still converges the overlay and
// keeps the tree structurally sound.
func TestControlLossRobustness(t *testing.T) {
	for _, p := range []ProtocolKind{VDM, HMTP} {
		p := p
		t.Run(string(p), func(t *testing.T) {
			cfg := smokeConfig(p)
			cfg.CtrlLossProb = 0.05
			cfg.DurationS = 1700
			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.InvariantErrors) > 0 {
				t.Fatalf("invariants under control loss: %v",
					res.InvariantErrors[:min(3, len(res.InvariantErrors))])
			}
			if res.FinalReachable < cfg.Nodes-8 {
				t.Fatalf("only %d of %d reachable under 5%% control loss",
					res.FinalReachable, cfg.Nodes)
			}
		})
	}
}

// TestHeavyControlLossDegradesGracefully: 25% control loss slows joins but
// never wedges the session.
func TestHeavyControlLossDegradesGracefully(t *testing.T) {
	cfg := smokeConfig(VDM)
	cfg.CtrlLossProb = 0.25
	cfg.ChurnPct = 0
	cfg.DurationS = 1700
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.InvariantErrors) > 0 {
		t.Fatalf("invariants: %v", res.InvariantErrors)
	}
	if res.FinalReachable < cfg.Nodes*3/4 {
		t.Fatalf("reachable %d of %d under 25%% control loss", res.FinalReachable, cfg.Nodes)
	}
	// Retries must show up as slower startups, not as failures.
	clean := smokeConfig(VDM)
	clean.ChurnPct = 0
	base, err := Run(clean)
	if err != nil {
		t.Fatal(err)
	}
	if res.StartupAvg <= base.StartupAvg {
		t.Fatalf("control loss should slow startup: %v vs %v", res.StartupAvg, base.StartupAvg)
	}
}

// TestStaleChildPruning: a ghost parent/child edge left by a lost ack gets
// pruned by the repeated-stale-chunk rule, freeing the degree slot.
func TestStaleChildPruning(t *testing.T) {
	cfg := smokeConfig(VDM)
	cfg.CtrlLossProb = 0.10
	cfg.DataRate = 5
	cfg.DurationS = 1700
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The structural check at measurement points (with the persistence
	// filter) is the assertion: ghost edges that survived would show up
	// as persistent parent/child asymmetry.
	if len(res.InvariantErrors) > 0 {
		t.Fatalf("ghost edges survived: %v", res.InvariantErrors)
	}
}
