package flow

import (
	"sync"
	"testing"
	"testing/quick"
)

func newTestWindow() *Window { return NewWindow(DefaultWindowBits, DefaultBackfill) }

func TestWindowBasics(t *testing.T) {
	w := newTestWindow()
	if !w.Add(5) {
		t.Fatal("first seq not new")
	}
	if w.Add(5) {
		t.Fatal("duplicate counted as new")
	}
	if !w.Add(6) || !w.Add(4) {
		t.Fatal("nearby fresh seqs rejected")
	}
	if w.Add(4) || w.Add(6) {
		t.Fatal("duplicates after reorder counted")
	}
}

func TestWindowOldSeqIsDuplicate(t *testing.T) {
	w := newTestWindow()
	w.Add(1000)
	// A small backfill below the first-seen seq is accepted (reordering
	// around a connect)...
	if !w.Add(1000 - DefaultBackfill + 1) {
		t.Fatal("in-backfill seq rejected")
	}
	// ...but anything older is a duplicate.
	if w.Add(1000 - DefaultBackfill - 1) {
		t.Fatal("seq below the backfill window counted as new")
	}
}

func TestWindowSlides(t *testing.T) {
	w := newTestWindow()
	w.Add(0)
	// Jump far beyond the window.
	if !w.Add(DefaultWindowBits * 3) {
		t.Fatal("far-future seq rejected")
	}
	// Everything at or below the old window is now "old".
	if w.Add(1) {
		t.Fatal("pre-slide seq counted as new after slide")
	}
	// Fresh seqs near the new position still work.
	if !w.Add(DefaultWindowBits*3 - 10) {
		t.Fatal("in-window seq rejected after slide")
	}
}

func TestWindowDense(t *testing.T) {
	w := newTestWindow()
	for i := int64(0); i < 3*DefaultWindowBits; i++ {
		if !w.Add(i) {
			t.Fatalf("sequential seq %d rejected", i)
		}
	}
	for i := int64(2 * DefaultWindowBits); i < 3*DefaultWindowBits; i++ {
		if w.Add(i) {
			t.Fatalf("recent duplicate %d accepted", i)
		}
	}
	if cum, ok := w.CumAck(); !ok || cum != 3*DefaultWindowBits-1 {
		t.Fatalf("cum=%d after dense stream, want %d", cum, 3*DefaultWindowBits-1)
	}
}

// Property: a monotone stream with occasional duplicates counts each
// distinct in-window seq exactly once.
func TestPropertyWindowExactlyOnce(t *testing.T) {
	f := func(deltas []uint8) bool {
		w := newTestWindow()
		seq := int64(0)
		news := 0
		seen := map[int64]bool{}
		for _, d := range deltas {
			seq += int64(d % 8) // small steps: stay inside the window
			isNew := w.Add(seq)
			if isNew == seen[seq] {
				return false
			}
			seen[seq] = true
			if isNew {
				news++
			}
		}
		return news == len(seen)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// The ack clock: the cumulative point stalls at a gap and resumes the
// moment the gap fills — including chains of buffered seqs beyond it.
func TestWindowCumAckStallResume(t *testing.T) {
	w := NewWindow(256, 0)
	w.Add(0)
	w.Add(1)
	if cum, _ := w.CumAck(); cum != 1 {
		t.Fatalf("cum=%d, want 1", cum)
	}
	// Gap at 2: 3..10 arrive but the cumulative point must not move.
	for s := int64(3); s <= 10; s++ {
		w.Add(s)
	}
	if cum, _ := w.CumAck(); cum != 1 {
		t.Fatalf("cum=%d during stall, want 1", cum)
	}
	// Filling the gap releases the whole buffered run at once.
	w.Add(2)
	if cum, _ := w.CumAck(); cum != 10 {
		t.Fatalf("cum=%d after resume, want 10", cum)
	}
}

func TestWindowMissingRanges(t *testing.T) {
	w := NewWindow(256, 0)
	for _, s := range []int64{0, 1, 4, 5, 9, 12} {
		w.Add(s)
	}
	got := w.Missing(nil, 16)
	want := []Range{{2, 3}, {6, 8}, {10, 11}}
	if len(got) != len(want) {
		t.Fatalf("missing=%v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("missing=%v, want %v", got, want)
		}
	}
	// The max cap truncates from the front.
	if got := w.Missing(nil, 2); len(got) != 2 || got[1] != (Range{6, 8}) {
		t.Fatalf("capped missing=%v", got)
	}
}

// Gap at the window head: the very first expected seq (cum+1 == head of
// the window) is missing. The NACK generator must report it rather than
// silently skipping to the first seen seq.
func TestWindowMissingGapAtHead(t *testing.T) {
	w := NewWindow(256, 4)
	// First observed seq is 10; backfill 4 means the window accepts 6..9
	// and the cumulative point starts at 5.
	w.Add(10)
	if cum, _ := w.CumAck(); cum != 5 {
		t.Fatalf("cum=%d, want 5", cum)
	}
	got := w.Missing(nil, 16)
	if len(got) != 1 || got[0] != (Range{6, 9}) {
		t.Fatalf("missing=%v, want [{6 9}]", got)
	}
	// Give-up on the head gap via Add advances the cumulative point.
	for s := int64(6); s <= 9; s++ {
		w.Add(s)
	}
	if cum, _ := w.CumAck(); cum != 10 {
		t.Fatalf("cum=%d after head fill, want 10", cum)
	}
}

// Sequence numbers around the uint32 boundary: wire seqs travel as
// uint32 (see wire.AppendFrame) but chunk seqs are int64. A stream
// crossing 2^32 must keep exact-once and cum-ack semantics — the window
// must not alias 2^32 with 0.
func TestWindowUint32Wraparound(t *testing.T) {
	w := NewWindow(256, 0)
	const edge = int64(1) << 32
	for s := edge - 5; s <= edge+5; s++ {
		if !w.Add(s) {
			t.Fatalf("seq %d near uint32 edge rejected", s)
		}
	}
	for s := edge - 5; s <= edge+5; s++ {
		if w.Add(s) {
			t.Fatalf("duplicate %d near uint32 edge accepted", s)
		}
	}
	if cum, _ := w.CumAck(); cum != edge+5 {
		t.Fatalf("cum=%d, want %d", cum, edge+5)
	}
	// A gap straddling the boundary is reported exactly.
	w2 := NewWindow(256, 0)
	w2.Add(edge - 2)
	w2.Add(edge + 2)
	got := w2.Missing(nil, 4)
	if len(got) != 1 || got[0] != (Range{edge - 1, edge + 1}) {
		t.Fatalf("missing=%v, want [{%d %d}]", got, edge-1, edge+1)
	}
}

func TestWindowSeen(t *testing.T) {
	w := NewWindow(256, 0)
	if w.Seen(3) {
		t.Fatal("Seen before any Add")
	}
	w.Add(0)
	w.Add(4)
	if !w.Seen(0) || !w.Seen(4) {
		t.Fatal("added seqs not seen")
	}
	if w.Seen(2) || w.Seen(5) {
		t.Fatal("unseen seqs reported seen")
	}
	if !w.Seen(-10) {
		t.Fatal("below-window seq not treated as seen")
	}
}

// Receive path Adds while ack/NACK timers read concurrently — the exact
// interleaving the live runtime produces. Run under -race.
func TestWindowConcurrentAckAdvance(t *testing.T) {
	w := NewWindow(4096, 0)
	const n = 20000
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for s := int64(0); s < n; s++ {
			if s%7 == 3 {
				continue // leave gaps for the reader to chew on
			}
			w.Add(s)
		}
	}()
	go func() {
		defer wg.Done()
		var scratch []Range
		var last int64 = -1
		for i := 0; i < 2000; i++ {
			cum, ok := w.CumAck()
			if ok && cum < last {
				t.Error("cumulative ack moved backwards")
				return
			}
			if ok {
				last = cum
			}
			scratch = w.Missing(scratch, 8)
			w.Seen(int64(i))
		}
	}()
	wg.Wait()
	// Fill the gaps; cum must reach the end.
	for s := int64(3); s < n; s += 7 {
		w.Add(s)
	}
	if cum, _ := w.CumAck(); cum != n-1 {
		t.Fatalf("cum=%d after filling gaps, want %d", cum, n-1)
	}
}
