// Package experiments defines one reproducible experiment per figure of
// the paper's evaluation chapters. Each experiment runs a matrix of
// sessions (sweep value × protocol × repetition), aggregates repetitions
// into means with 90% confidence intervals — the paper's reporting style —
// and renders the series the figure plots.
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"vdm/internal/lab"
	"vdm/internal/parallel"
	"vdm/internal/sim"
	"vdm/internal/stats"
)

// Options scale an experiment run. The paper's full scale (32 repetitions,
// 10000-second sessions) takes hours; TimeScale and Reps trade precision
// for wall-clock without changing the shapes.
type Options struct {
	Seed int64
	// Reps is the repetitions per matrix cell; zero selects 5.
	Reps int
	// TimeScale multiplies session durations and join phases
	// (1 = the paper's timings); zero selects 1.
	TimeScale float64
	// RateScale multiplies the data chunk rate; zero selects 1.
	RateScale float64
	// Jobs caps the session worker pool: every (sweep value, protocol,
	// repetition) cell is an independent seeded simulation, so cells run
	// concurrently and are aggregated in queue order — the output is
	// byte-identical at any Jobs value. Zero selects GOMAXPROCS; 1 runs
	// fully serial.
	Jobs int
	// Progress, when non-nil, receives one line per finished session.
	// Lines are emitted during the deterministic aggregation phase, so
	// their order does not depend on Jobs either.
	Progress func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.Reps <= 0 {
		o.Reps = 5
	}
	if o.TimeScale <= 0 {
		o.TimeScale = 1
	}
	if o.RateScale <= 0 {
		o.RateScale = 1
	}
	if o.Progress == nil {
		o.Progress = func(string, ...any) {}
	}
	return o
}

// repSeed derives a distinct seed per matrix cell and repetition.
func (o Options) repSeed(cell, rep int) int64 {
	return o.Seed + int64(cell)*1_000_003 + int64(rep)*7_919
}

// Point is one x-value of a figure with one summarized y-value per series.
type Point struct {
	X      float64
	Series map[string]stats.Summary
}

// Table is the data behind one figure.
type Table struct {
	ID      string // figure number, e.g. "3.25"
	Title   string
	XLabel  string
	Columns []string
	Points  []Point
}

// Format renders the table as aligned text with mean±CI90 cells.
func (t *Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure %s — %s\n", t.ID, t.Title)
	header := []string{t.XLabel}
	header = append(header, t.Columns...)
	rows := [][]string{header}
	for _, p := range t.Points {
		row := []string{trimFloat(p.X)}
		for _, c := range t.Columns {
			s, ok := p.Series[c]
			if !ok {
				row = append(row, "-")
				continue
			}
			if s.CI90 > 0 {
				row = append(row, fmt.Sprintf("%.4g ±%.2g", s.Mean, s.CI90))
			} else {
				row = append(row, fmt.Sprintf("%.4g", s.Mean))
			}
		}
		rows = append(rows, row)
	}
	widths := make([]int, len(header))
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	for ri, row := range rows {
		for i, cell := range row {
			fmt.Fprintf(&b, "%-*s", widths[i]+2, cell)
		}
		b.WriteByte('\n')
		if ri == 0 {
			b.WriteString(strings.Repeat("-", sum(widths)+2*len(widths)))
			b.WriteByte('\n')
		}
	}
	return b.String()
}

func trimFloat(x float64) string {
	s := fmt.Sprintf("%.4g", x)
	return s
}

func sum(xs []int) int {
	t := 0
	for _, x := range xs {
		t += x
	}
	return t
}

// Runner executes one experiment group and returns its figures' tables.
type Runner func(Options) ([]*Table, error)

// registry maps experiment group names to runners; figIndex maps a figure
// id to its group.
var (
	registry = map[string]Runner{}
	figIndex = map[string]string{}
	order    []string
)

func register(group string, figs []string, r Runner) {
	registry[group] = r
	order = append(order, group)
	for _, f := range figs {
		figIndex[f] = group
	}
}

// Groups lists the experiment groups in registration order.
func Groups() []string { return append([]string(nil), order...) }

// GroupFor resolves a figure id ("5.9") to its experiment group.
func GroupFor(fig string) (string, bool) {
	g, ok := figIndex[fig]
	return g, ok
}

// Run executes the named experiment group.
func Run(group string, o Options) ([]*Table, error) {
	r, ok := registry[group]
	if !ok {
		names := Groups()
		sort.Strings(names)
		return nil, fmt.Errorf("experiments: unknown group %q (have %s)", group, strings.Join(names, ", "))
	}
	return r(o.withDefaults())
}

// matrix queues the independent session cells of one experiment, executes
// them across Options.Jobs workers, and then replays each cell's
// aggregation callback serially in queue order. Queue order equals the
// order the old serial loops ran in, and float accumulation happens only
// inside the ordered callbacks — so the tables (and Progress lines) an
// experiment produces are byte-identical to a serial run regardless of
// worker count. Every cell must be self-contained: each derives all of
// its randomness from its own repSeed, and sim.Run/lab.Run build a
// private underlay, event queue and RNG per call.
type matrix struct {
	o    Options
	runs []func() (any, error)
	acks []func(any)
}

func newMatrix(o Options) *matrix { return &matrix{o: o} }

// sim queues one simulator session; then consumes its result during
// flush, in queue order.
func (m *matrix) sim(cfg sim.Config, then func(*sim.Result)) {
	m.runs = append(m.runs, func() (any, error) { return sim.Run(cfg) })
	m.acks = append(m.acks, func(v any) { then(v.(*sim.Result)) })
}

// lab queues one chapter-5 lab emulation.
func (m *matrix) lab(cfg lab.Config, then func(*lab.Result)) {
	m.runs = append(m.runs, func() (any, error) { return lab.Run(cfg) })
	m.acks = append(m.acks, func(v any) { then(v.(*lab.Result)) })
}

// flush executes every queued cell (concurrently up to o.Jobs workers),
// then applies the aggregation callbacks serially in queue order.
func (m *matrix) flush() error {
	results, err := parallel.Map(len(m.runs), m.o.Jobs, func(i int) (any, error) {
		return m.runs[i]()
	})
	if err != nil {
		return err
	}
	for i, ack := range m.acks {
		ack(results[i])
	}
	m.runs, m.acks = nil, nil
	return nil
}

// collect turns per-rep observations into a Point series map.
type cell struct{ acc *stats.Accumulator }

func newCell() *cell { return &cell{acc: stats.NewAccumulator()} }

func (c *cell) add(series string, v float64) { c.acc.Add(series, v) }

func (c *cell) point(x float64) Point {
	p := Point{X: x, Series: map[string]stats.Summary{}}
	for _, name := range c.acc.Names() {
		p.Series[name] = c.acc.Summary(name)
	}
	return p
}
