package overlay

import "testing"

func TestFosterSlotBypassesDegree(t *testing.T) {
	r := newRig(t, uniformRTT(4, 20))
	s := r.addPeer(0, 1, true) // degree 1
	a := r.addPeer(1, 1, false)
	b := r.addPeer(2, 1, false)
	_ = a
	r.net.Send(1, 0, ConnRequest{Token: 1, Kind: ConnChild, Dist: 20})
	r.sim.Run(1)
	if s.FreeDegree() != 0 {
		t.Fatal("precondition: source full")
	}
	// A regular request is refused, a foster request is granted.
	r.net.Send(2, 0, ConnRequest{Token: 2, Kind: ConnChild, Dist: 20})
	r.sim.Run(2)
	for _, m := range b.protocolMsgs {
		if cr, ok := m.(ConnResponse); ok && cr.Token == 2 && cr.Accepted {
			t.Fatal("regular request accepted beyond degree")
		}
	}
	r.net.Send(2, 0, ConnRequest{Token: 3, Kind: ConnChild, Dist: 20, Foster: true})
	r.sim.Run(3)
	ok := false
	for _, m := range b.protocolMsgs {
		if cr, okc := m.(ConnResponse); okc && cr.Token == 3 && cr.Accepted {
			ok = true
		}
	}
	if !ok {
		t.Fatal("foster request refused")
	}
	if got := s.FosterIDs(); len(got) != 1 || got[0] != 2 {
		t.Fatalf("fosters %v", got)
	}
	if len(s.ChildIDs()) != 1 {
		t.Fatalf("regular children %v changed", s.ChildIDs())
	}
}

func TestFosterExcludedFromInfoResponse(t *testing.T) {
	r := newRig(t, uniformRTT(4, 20))
	s := r.addPeer(0, 2, true)
	r.addPeer(1, 2, false)
	w := r.addPeer(3, 2, false)
	s.Peer.PutChild(2, 10)
	s.Peer.PutFoster(1, 15)

	r.net.Send(3, 0, InfoRequest{Token: 9})
	r.sim.Run(1)
	var ir *InfoResponse
	for _, m := range w.protocolMsgs {
		if v, ok := m.(InfoResponse); ok {
			ir = &v
		}
	}
	if ir == nil {
		t.Fatal("no response")
	}
	if len(ir.Children) != 1 || ir.Children[0].ID != 2 {
		t.Fatalf("children %v should not include fosters", ir.Children)
	}
	if ir.Free != 1 {
		t.Fatalf("free degree %d should ignore fosters", ir.Free)
	}
}

func TestFosterReceivesDataAndPathUpdates(t *testing.T) {
	r := newRig(t, uniformRTT(3, 20))
	s := r.addPeer(0, 1, true)
	f := r.addPeer(1, 1, false)
	s.Peer.PutFoster(1, 20)
	f.ApplyConnect(0, 20, []NodeID{})

	s.EmitChunk(0)
	s.EmitChunk(1)
	r.sim.Run(1)
	if f.Stats().Received != 2 {
		t.Fatalf("foster received %d chunks", f.Stats().Received)
	}
	s.setRootPath(nil)
	r.sim.Run(2)
	if got := f.RootPath(); len(got) != 1 || got[0] != 0 {
		t.Fatalf("foster root path %v", got)
	}
}

func TestFosterPromotionNeedsFreeDegree(t *testing.T) {
	r := newRig(t, uniformRTT(4, 20))
	s := r.addPeer(0, 1, true)
	r.addPeer(1, 1, false)
	f := r.addPeer(2, 1, false)
	s.Peer.PutChild(1, 20)
	s.Peer.PutFoster(2, 20)

	// Full: promotion refused, foster slot kept.
	r.net.Send(2, 0, ConnRequest{Token: 5, Kind: ConnChild, Dist: 20})
	r.sim.Run(1)
	for _, m := range f.protocolMsgs {
		if cr, ok := m.(ConnResponse); ok && cr.Token == 5 && cr.Accepted {
			t.Fatal("promotion accepted while full")
		}
	}
	if len(s.FosterIDs()) != 1 {
		t.Fatal("foster slot lost on refused promotion")
	}

	// Slot frees: promotion succeeds and clears the foster entry.
	s.Peer.DelChild(1)
	r.net.Send(2, 0, ConnRequest{Token: 6, Kind: ConnChild, Dist: 25})
	r.sim.Run(2)
	ok := false
	for _, m := range f.protocolMsgs {
		if cr, okc := m.(ConnResponse); okc && cr.Token == 6 && cr.Accepted {
			ok = true
		}
	}
	if !ok {
		t.Fatal("promotion refused despite capacity")
	}
	if len(s.FosterIDs()) != 0 {
		t.Fatal("foster entry survived promotion")
	}
	if d, _ := s.ChildDist(2); d != 25 {
		t.Fatalf("promoted child distance %v", d)
	}
}

func TestFosterLeaveNotified(t *testing.T) {
	r := newRig(t, uniformRTT(3, 20))
	p := r.addPeer(1, 1, false)
	f := r.addPeer(2, 1, false)
	p.ApplyConnect(0, 20, []NodeID{})
	p.Peer.PutFoster(2, 20)
	f.ApplyConnect(1, 20, []NodeID{0})

	p.Leave()
	r.sim.Run(1)
	if f.Connected() {
		t.Fatal("foster child not orphaned on parent leave")
	}
	if len(f.orphanedBy) != 1 {
		t.Fatal("foster child missed the leave notification")
	}
}
