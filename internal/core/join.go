package core

import (
	"fmt"

	"vdm/internal/obs"
	"vdm/internal/overlay"
)

// purpose distinguishes why the join state machine is running: the initial
// join, reconnection after a parent departure, or a refinement shadow
// join.
type purpose int

const (
	purposeJoin purpose = iota
	purposeReconnect
	purposeRefine
)

func (p purpose) String() string {
	switch p {
	case purposeReconnect:
		return "reconnect"
	case purposeRefine:
		return "refine"
	default:
		return "join"
	}
}

// hintDetail renders the grandparent hint carried by an orphan event.
func hintDetail(hint overlay.NodeID) string {
	if hint == overlay.None {
		return "no-hint"
	}
	return fmt.Sprintf("hint:%d", hint)
}

type stage int

const (
	stageInfo stage = iota
	stageProbe
	stageConn
)

// joinState is the per-attempt state of the iterative join procedure.
type joinState struct {
	purpose  purpose
	stage    stage
	token    int
	target   overlay.NodeID
	sentAt   float64
	dTarget  float64
	children []overlay.ChildInfo
	dists    overlay.ProbeResult
	visited  map[overlay.NodeID]bool
	attempts int
	adopt    []overlay.NodeID
	// foster marks the quick-start attachment to the source; on
	// acceptance the directional search runs as an immediate
	// refinement.
	foster bool
	// startedAt is when this attempt began, for the join_done trace
	// event's duration.
	startedAt float64

	// Scratch storage reused across iterations of one attempt and across
	// recycled attempts (see newJoinState): probe target ids, and the
	// Case II/III partitions built by decide. None of these escape — the
	// prober copies its targets and sortByDist copies the adopt list.
	probeIDs []overlay.NodeID
	case3buf []overlay.NodeID
	case2buf []overlay.NodeID
}

// joinTimer carries one join timeout (info or conn stage) through an
// ArgBus timer. Records are free-listed on the node, so the thousands of
// timeouts a join storm schedules reuse a handful of structs instead of
// allocating a closure each.
type joinTimer struct {
	n     *Node
	js    *joinState
	tok   int
	stage stage
	next  *joinTimer
}

// joinTimerFire is the shared timeout callback (arg: *joinTimer). The
// token fences off stale timers exactly as the captured token did in the
// closure form: tokens are node-monotonic and never reused, so a recycled
// joinState pointer cannot satisfy a stale record's check.
func joinTimerFire(a any) {
	t := a.(*joinTimer)
	n, js, tok, st := t.n, t.js, t.tok, t.stage
	t.js = nil
	// Recycle only while a join is in flight: a settled node would
	// otherwise re-pin every straggler record (stage timeouts outlive
	// the stages they guard) for the rest of the run.
	if n.join != nil {
		t.next = n.timerFree
		n.timerFree = t
	}
	if n.join != js || js.token != tok || js.stage != st {
		return
	}
	joinTimeoutExpired(n, js, st)
}

// armTimeout schedules the stage timeout for the current attempt,
// preferring the bus's arg-carrying timer when available.
func (n *Node) armTimeout(js *joinState, d float64) {
	if n.argBus == nil {
		tok, st := js.token, js.stage
		n.Net().After(d, func() {
			if n.join == js && js.stage == st && js.token == tok {
				joinTimeoutExpired(n, js, st)
			}
		})
		return
	}
	t := n.timerFree
	if t == nil {
		t = &joinTimer{n: n}
	} else {
		n.timerFree = t.next
		t.next = nil
	}
	t.js = js
	t.tok = js.token
	t.stage = js.stage
	n.argBus.AfterArg(d, joinTimerFire, t)
}

// joinTimeoutExpired is the closure-path body of a fired stage timeout
// (the guard already passed).
func joinTimeoutExpired(n *Node, js *joinState, st stage) {
	switch st {
	case stageInfo:
		n.onTargetUnusable(js)
	case stageConn:
		if js.purpose == purposeRefine {
			n.EndSwitch()
			n.endJoin(js)
			n.fosterRetry()
			return
		}
		n.restart(js)
	}
}

// releaseJoinScratch drops the recycled join attempt, timer records, and
// probe sessions once the node has settled: a population that joined in
// one storm would otherwise pin a full set of join scratch per peer for
// the rest of the run. The next join (churn reconnect, refinement) simply
// reallocates.
func (n *Node) releaseJoinScratch() {
	if n.join != nil {
		return
	}
	n.joinFree = nil
	n.timerFree = nil
	n.Prober().Trim()
}

// newJoinState returns a blank attempt state, reusing the previous
// attempt's allocations when possible. A node runs at most one join
// procedure at a time, so a one-slot free list suffices; stale closures
// from a recycled attempt are fenced off by the monotonic token, which
// every timeout and probe continuation checks before touching state.
func (n *Node) newJoinState(p purpose, attempts int) *joinState {
	js := n.joinFree
	if js == nil {
		js = &joinState{
			visited: make(map[overlay.NodeID]bool),
			dists:   make(overlay.ProbeResult),
		}
	} else {
		n.joinFree = nil
		clear(js.visited)
		clear(js.dists)
		*js = joinState{
			children: js.children[:0],
			visited:  js.visited,
			dists:    js.dists,
			probeIDs: js.probeIDs[:0],
			case3buf: js.case3buf[:0],
			case2buf: js.case2buf[:0],
		}
	}
	js.purpose = p
	js.attempts = attempts
	js.startedAt = n.Now()
	return js
}

// endJoin clears the in-flight procedure and recycles its state for the
// node's next attempt. Callers must copy out any field they still need.
func (n *Node) endJoin(js *joinState) {
	n.join = nil
	js.adopt = nil // referenced by the sent ConnRequest; never reuse
	n.joinFree = js
}

// Joining reports whether a join/reconnect/refine procedure is in flight.
func (n *Node) Joining() bool { return n.join != nil }

func (n *Node) begin(p purpose, target overlay.NodeID) {
	n.beginWith(p, target, 0)
}

func (n *Node) beginWith(p purpose, target overlay.NodeID, attempts int) {
	js := n.newJoinState(p, attempts)
	n.join = js
	if attempts == 0 {
		n.emit(obs.EvJoinStart, obs.Event{Target: int64(target), Detail: p.String()})
	}
	n.sendInfo(js, target)
}

// sendInfo queries target for its children — one iteration of the
// dissertation's "Contact(S)".
func (n *Node) sendInfo(js *joinState, target overlay.NodeID) {
	js.stage = stageInfo
	js.target = target
	js.visited[target] = true
	js.sentAt = n.Now()
	n.token++
	js.token = n.token
	n.emit(obs.EvJoinStep, obs.Event{Target: int64(target), Step: len(js.visited), Detail: js.purpose.String()})
	n.Net().Send(n.ID(), target, overlay.InfoRequest{Token: js.token, JoinID: n.curJoin})

	n.armTimeout(js, n.InfoTimeoutS)
}

// onTargetUnusable handles a dead or disconnected query target: an orphan
// whose grandparent also departed falls back to the source; everything
// else restarts.
func (n *Node) onTargetUnusable(js *joinState) {
	n.emit(obs.EvJoinTimeout, obs.Event{Target: int64(js.target), Step: len(js.visited), Detail: js.purpose.String()})
	switch {
	case js.purpose == purposeRefine:
		n.endJoin(js)
		n.fosterRetry()
	case js.purpose == purposeReconnect && js.target != n.Source():
		n.sendInfo(js, n.Source())
	default:
		n.restart(js)
	}
}

func (n *Node) onInfoResponse(from overlay.NodeID, m overlay.InfoResponse) {
	js := n.join
	if js == nil || js.stage != stageInfo || js.token != m.Token || js.target != from {
		return
	}
	if !m.Connected && from != n.Source() {
		n.onTargetUnusable(js)
		return
	}
	js.dTarget = n.Measure(from, (n.Now()-js.sentAt)*1000)
	js.dists[from] = js.dTarget

	js.children = js.children[:0]
	ids := js.probeIDs[:0]
	for _, ci := range m.Children {
		if ci.ID == n.ID() {
			continue
		}
		js.children = append(js.children, ci)
		ids = append(ids, ci.ID)
	}
	js.probeIDs = ids
	if len(ids) == 0 {
		n.decide(js, nil)
		return
	}
	js.stage = stageProbe
	tok := js.token
	n.Prober().Launch(ids, n.ProbeTimeoutS, func(res overlay.ProbeResult) {
		if n.join == js && js.stage == stageProbe && js.token == tok {
			for id, d := range res {
				js.dists[id] = d
			}
			n.decide(js, res)
		}
	})
}

// decide runs the directionality test over the probed children of the
// current target and advances the state machine: descend on Case III,
// splice on Case II, attach on Case I.
func (n *Node) decide(js *joinState, res overlay.ProbeResult) {
	// Every probed candidate doubles as repair-neighbor material for the
	// reliable data plane (no-op unless flow is enabled): the join walk
	// is the one moment a peer holds measured distances to non-parents.
	for id, d := range res {
		n.OfferRepairCandidate(id, d)
	}
	case3, case2 := js.case3buf[:0], js.case2buf[:0]
	for _, ci := range js.children {
		d, ok := res[ci.ID]
		if !ok {
			continue // child did not answer: treat as departed
		}
		switch Classify(js.dTarget, ci.Dist, d, n.cfg.Gamma) {
		case CaseIII:
			if !js.visited[ci.ID] {
				case3 = append(case3, ci.ID)
			}
		case CaseII:
			case2 = append(case2, ci.ID)
		}
	}
	js.case3buf, js.case2buf = case3, case2

	if len(case3) > 0 {
		// "Select closest of CaseIII, continue from closest one."
		next := closestOf(case3, res)
		n.emit(obs.EvJoinDecide, obs.Event{Target: int64(next), Case: "III", Step: len(case3), Value: js.dTarget})
		n.sendInfo(js, next)
		return
	}
	if len(case2) > 0 && js.purpose != purposeRefine {
		// "N is between S and D(1..n): connect as long as N allows."
		adopt := sortByDist(case2, res)
		if free := n.FreeDegree(); len(adopt) > free {
			adopt = adopt[:free]
		}
		if len(adopt) > 0 {
			n.emit(obs.EvJoinDecide, obs.Event{Target: int64(js.target), Case: "II", Step: len(adopt), Value: js.dTarget})
			n.connect(js, js.target, overlay.ConnSplice, adopt)
			return
		}
	}
	// Case I: no directional child — attach to the queried node itself.
	n.emit(obs.EvJoinDecide, obs.Event{Target: int64(js.target), Case: "I", Value: js.dTarget})
	n.connect(js, js.target, overlay.ConnChild, nil)
}

// connect issues the connection request, or ends a refinement that found
// the current parent already optimal.
func (n *Node) connect(js *joinState, to overlay.NodeID, kind overlay.ConnKind, adopt []overlay.NodeID) {
	if js.purpose == purposeRefine {
		if to == n.ParentID() && !n.fostered {
			n.endJoin(js)
			return
		}
		// A fostered node sends a regular request even to its current
		// (foster) parent: that is the promotion to a real slot.
		n.BeginSwitch()
	}
	js.stage = stageConn
	js.target = to
	js.adopt = adopt
	js.sentAt = n.Now()
	n.token++
	js.token = n.token
	n.emit(obs.EvJoinConnect, obs.Event{Target: int64(to), Case: connKindName(kind, js), Step: len(adopt)})
	n.Net().Send(n.ID(), to, overlay.ConnRequest{
		Token:  js.token,
		Kind:   kind,
		Dist:   n.distTo(js, to),
		Adopt:  adopt,
		Foster: js.foster && js.purpose == purposeJoin,
		JoinID: n.curJoin,
	})

	n.armTimeout(js, n.ConnTimeoutS)
}

func (n *Node) distTo(js *joinState, to overlay.NodeID) float64 {
	if d, ok := js.dists[to]; ok {
		return d
	}
	return js.dTarget
}

// connDist is the distance recorded at connection time: the probed value
// when available, otherwise (foster quick-start) the round-trip of the
// connection exchange itself.
func (n *Node) connDist(js *joinState, from overlay.NodeID) float64 {
	if d, ok := js.dists[from]; ok {
		return d
	}
	if js.foster {
		return n.Measure(from, (n.Now()-js.sentAt)*1000)
	}
	return js.dTarget
}

func (n *Node) onConnResponse(from overlay.NodeID, m overlay.ConnResponse) {
	js := n.join
	if js == nil || js.stage != stageConn || js.token != m.Token || js.target != from {
		return
	}
	if m.Accepted {
		dist := n.connDist(js, from)
		if js.purpose == purposeRefine {
			n.ApplySwitch(from, dist, m.RootPath)
			n.EndSwitch()
			n.endJoin(js)
			n.fostered = false // promoted or moved to a proper slot
			n.emit(obs.EvRefineSwitch, obs.Event{Target: int64(from), Value: dist})
			n.releaseJoinScratch()
			return
		}
		n.ApplyConnect(from, dist, m.RootPath)
		n.emit(obs.EvJoinDone, obs.Event{
			Target: int64(from),
			Step:   len(js.visited),
			Value:  n.Now() - js.startedAt,
			Detail: js.purpose.String(),
		})
		for _, c := range m.Adopted {
			d, ok := js.dists[c]
			if !ok {
				d = dist
			}
			n.AdoptChild(c, d, from, js.token)
		}
		foster := js.foster
		n.endJoin(js)
		if foster {
			// Quick-start done; now find the ideal parent.
			n.fostered = true
			n.begin(purposeRefine, n.Source())
		}
		n.maybeScheduleRefine()
		// A foster quick-start started a refinement above; the guard in
		// releaseJoinScratch keeps its scratch alive in that case.
		n.releaseJoinScratch()
		return
	}

	// Rejected (degree-saturated or loop-risk): fall back to the closest
	// unvisited child of the rejecting node, descending a level.
	if js.purpose == purposeRefine {
		n.EndSwitch()
		if !n.fostered {
			n.endJoin(js)
			return
		}
		// A fostered node must leave its beyond-degree slot eventually:
		// keep searching past the saturated candidate instead of
		// aborting the refinement.
	}
	if js.foster {
		// The source refused even a foster slot: run the regular
		// directional join.
		n.endJoin(js)
		n.begin(purposeJoin, n.Source())
		return
	}
	cands := js.probeIDs[:0]
	for _, ci := range m.Children {
		if ci.ID != n.ID() && !js.visited[ci.ID] {
			cands = append(cands, ci.ID)
		}
	}
	js.probeIDs = cands
	if len(cands) == 0 {
		n.restart(js)
		return
	}
	if allMeasured(cands, js.dists) {
		n.sendInfo(js, closestOf(cands, js.dists))
		return
	}
	js.stage = stageProbe
	n.token++
	js.token = n.token
	tok := js.token
	n.Prober().Launch(cands, n.ProbeTimeoutS, func(res overlay.ProbeResult) {
		if n.join != js || js.stage != stageProbe || js.token != tok {
			return
		}
		for id, d := range res {
			js.dists[id] = d
		}
		best, ok := closestIn(cands, js.dists)
		if !ok {
			n.restart(js)
			return
		}
		n.sendInfo(js, best)
	})
}

// restart begins the whole join over from the source, backing off after
// too many consecutive failures (e.g. a churn storm).
func (n *Node) restart(js *joinState) {
	attempts := js.attempts + 1
	p, target := js.purpose, js.target
	n.endJoin(js)
	n.emit(obs.EvJoinRestart, obs.Event{Target: int64(target), Step: attempts, Detail: p.String()})
	if p == purposeRefine {
		n.fosterRetry()
		return
	}
	if attempts >= n.cfg.MaxAttempts {
		n.Net().After(n.cfg.RetryBackoffS, func() {
			if n.Alive() && !n.Connected() && n.join == nil {
				n.beginWith(p, n.Source(), 0)
			}
		})
		return
	}
	n.beginWith(p, n.Source(), attempts)
}

// connKindName names a connection request for the trace stream.
func connKindName(kind overlay.ConnKind, js *joinState) string {
	switch {
	case js.foster && js.purpose == purposeJoin:
		return "foster"
	case kind == overlay.ConnSplice:
		return "splice"
	default:
		return "child"
	}
}

func closestOf(ids []overlay.NodeID, dists overlay.ProbeResult) overlay.NodeID {
	best, _ := closestIn(ids, dists)
	return best
}

func closestIn(ids []overlay.NodeID, dists overlay.ProbeResult) (overlay.NodeID, bool) {
	best := overlay.None
	bd := 0.0
	for _, id := range ids {
		d, ok := dists[id]
		if !ok {
			continue
		}
		if best == overlay.None || d < bd || (d == bd && id < best) {
			best, bd = id, d
		}
	}
	return best, best != overlay.None
}

func allMeasured(ids []overlay.NodeID, dists overlay.ProbeResult) bool {
	for _, id := range ids {
		if _, ok := dists[id]; !ok {
			return false
		}
	}
	return true
}

// sortByDist returns ids ordered by ascending measured distance
// (insertion sort: the lists are tiny), breaking ties by id.
func sortByDist(ids []overlay.NodeID, dists overlay.ProbeResult) []overlay.NodeID {
	out := append([]overlay.NodeID(nil), ids...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0; j-- {
			dj, dp := dists[out[j]], dists[out[j-1]]
			if dj < dp || (dj == dp && out[j] < out[j-1]) {
				out[j], out[j-1] = out[j-1], out[j]
			} else {
				break
			}
		}
	}
	return out
}
