package underlay

import (
	"sync"
	"testing"

	"vdm/internal/rng"
	"vdm/internal/topology"
)

// TestRouterUnderlayConcurrent exercises the deterministic query paths of
// one RouterUnderlay from many goroutines; the lazy SPT and path-loss
// caches used to be unsynchronized, so this test documents (under -race)
// that a single underlay can back concurrent sessions.
func TestRouterUnderlayConcurrent(t *testing.T) {
	ts, err := topology.GenerateTransitStub(topology.DefaultTransitStub(), rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	ts.AssignLinkLoss(0.02, rng.New(8))
	const hosts = 64
	attach := ts.AttachHosts(hosts, rng.New(9))
	u := NewRouter(ts.Graph, attach)

	// Reference answers, computed single-threaded on a fresh twin.
	ref := NewRouter(ts.Graph, attach)
	wantRTT := make([]float64, hosts)
	wantLoss := make([]float64, hosts)
	for h := 0; h < hosts; h++ {
		wantRTT[h] = ref.BaseRTT(h, (h+1)%hosts)
		wantLoss[h] = ref.LossRate(h, (h+1)%hosts)
	}

	const workers = 8
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				for h := 0; h < hosts; h++ {
					a, b := h, (h+1)%hosts
					if got := u.BaseRTT(a, b); got != wantRTT[h] {
						t.Errorf("worker %d: BaseRTT(%d,%d) = %v, want %v", w, a, b, got, wantRTT[h])
						return
					}
					if got := u.LossRate(a, b); got != wantLoss[h] {
						t.Errorf("worker %d: LossRate(%d,%d) = %v, want %v", w, a, b, got, wantLoss[h])
						return
					}
					_ = u.PathLinks(a, b)
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestRouterUnderlayPrecompute verifies the eager fill covers every
// attachment router so later queries are read-only.
func TestRouterUnderlayPrecompute(t *testing.T) {
	ts, err := topology.GenerateTransitStub(topology.DefaultTransitStub(), rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	attach := ts.AttachHosts(16, rng.New(4))
	u := NewRouter(ts.Graph, attach)
	u.Precompute()
	routers := make(map[topology.RouterID]bool)
	for _, r := range attach {
		routers[r] = true
	}
	u.mu.RLock()
	defer u.mu.RUnlock()
	for r := range routers {
		if u.sptSlot[r] == 0 {
			t.Fatalf("router %d SPT not precomputed", r)
		}
	}
}
