package btp

import (
	"testing"

	"vdm/internal/overlay"
	"vdm/internal/protocoltest"
	"vdm/internal/rng"
)

type btpRig struct {
	*protocoltest.Rig
	nodes map[overlay.NodeID]*Node
}

func newRig(t *testing.T, points []protocoltest.Point, degrees []int) *btpRig {
	t.Helper()
	r := &btpRig{Rig: protocoltest.New(points), nodes: map[overlay.NodeID]*Node{}}
	for i := range points {
		deg := 4
		if degrees != nil {
			deg = degrees[i]
		}
		n := New(r.Net, r.PeerConfig(overlay.NodeID(i), deg), Config{SwitchPeriodS: 1e9}, rng.New(int64(i)+3))
		r.Net.Register(overlay.NodeID(i), n)
		r.nodes[overlay.NodeID(i)] = n
	}
	return r
}

func (r *btpRig) joinAll(order ...overlay.NodeID) {
	for i, id := range order {
		id := id
		r.Sim.At(float64(i)*10, func() { r.nodes[id].StartJoin() })
	}
	r.Run(float64(len(order))*10 + 30)
}

func (r *btpRig) parentOf(t *testing.T, id overlay.NodeID) overlay.NodeID {
	t.Helper()
	n := r.nodes[id]
	if !n.Connected() {
		t.Fatalf("node %d not connected", id)
	}
	return n.ParentID()
}

// TestJoinAttachesAtRoot: BTP newcomers connect to the root directly.
func TestJoinAttachesAtRoot(t *testing.T) {
	r := newRig(t, []protocoltest.Point{
		{X: 0, Y: 0}, {X: 30, Y: 0}, {X: 31, Y: 0},
	}, nil)
	r.joinAll(1, 2)
	if r.parentOf(t, 1) != 0 || r.parentOf(t, 2) != 0 {
		t.Fatalf("parents %d, %d — both should hang off the root", r.parentOf(t, 1), r.parentOf(t, 2))
	}
}

// TestJoinDescendsWhenRootFull: a saturated root redirects down the tree.
func TestJoinDescendsWhenRootFull(t *testing.T) {
	r := newRig(t, []protocoltest.Point{
		{X: 0, Y: 0}, {X: 30, Y: 0}, {X: 31, Y: 0},
	}, []int{1, 4, 4})
	r.joinAll(1, 2)
	if got := r.parentOf(t, 2); got != 1 {
		t.Fatalf("parent = %d, want the root's child", got)
	}
}

// TestSiblingSwitch reproduces figure 2.7: a node moves under a sibling
// that is closer than its current parent.
func TestSiblingSwitch(t *testing.T) {
	r := newRig(t, []protocoltest.Point{
		{X: 0, Y: 0}, {X: 30, Y: 0}, {X: 31, Y: 0},
	}, nil)
	b := r.nodes[2]
	b.cfg.SwitchPeriodS = 20
	r.joinAll(1, 2) // both attach at the root; the switch timer is armed
	r.Run(r.Sim.Now() + 60)
	if got := r.parentOf(t, 2); got != 1 {
		t.Fatalf("parent after sibling switch = %d, want the sibling", got)
	}
	if b.Base().Stats().ParentSwitch < 1 {
		t.Fatal("switch not recorded")
	}
}

// TestNoMutualSwitchLoop: two close siblings switching simultaneously must
// not adopt each other (the classic BTP loop) — the switching guard in the
// peer base refuses requests mid-switch.
func TestNoMutualSwitchLoop(t *testing.T) {
	r := newRig(t, []protocoltest.Point{
		{X: 0, Y: 0}, {X: 30, Y: 0}, {X: 30.5, Y: 0},
	}, nil)
	r.nodes[1].cfg.SwitchPeriodS = 20
	r.nodes[2].cfg.SwitchPeriodS = 20
	r.joinAll(1, 2)
	r.Run(r.Sim.Now() + 200)
	p1, p2 := r.nodes[1].ParentID(), r.nodes[2].ParentID()
	if p1 == 2 && p2 == 1 {
		t.Fatal("mutual switch created a loop")
	}
	// Whatever happened, both must still reach the root.
	for _, id := range []overlay.NodeID{1, 2} {
		cur := id
		for steps := 0; ; steps++ {
			if steps > 4 {
				t.Fatalf("node %d detached from root (p1=%d p2=%d)", id, p1, p2)
			}
			p := r.nodes[cur].ParentID()
			if p == 0 {
				break
			}
			if p == overlay.None {
				t.Fatalf("node %d orphaned", id)
			}
			cur = p
		}
	}
}

// TestReconnectAtRoot: BTP orphans rejoin at the root.
func TestReconnectAtRoot(t *testing.T) {
	r := newRig(t, []protocoltest.Point{
		{X: 0, Y: 0}, {X: 30, Y: 0}, {X: 31, Y: 0},
	}, []int{1, 4, 4})
	r.joinAll(1, 2) // chain: 0 -> 1 -> 2
	if r.parentOf(t, 2) != 1 {
		t.Fatal("precondition failed")
	}
	now := r.Sim.Now()
	r.Sim.At(now+1, func() { r.nodes[1].Leave() })
	r.Run(now + 10)
	if got := r.parentOf(t, 2); got != 0 {
		t.Fatalf("orphan's parent = %d, want root", got)
	}
}
