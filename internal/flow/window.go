package flow

import "sync"

// DefaultWindowBits is the number of recent sequence numbers a Window
// tracks. Reordering beyond this span (minutes of stream at the paper's
// rates) is not observable in a tree overlay.
const DefaultWindowBits = 4096

// DefaultBackfill is how far below the first-seen sequence number a
// Window still accepts entries, absorbing reordering around a connect.
const DefaultBackfill = 64

// Range is an inclusive interval of sequence numbers [Lo, Hi].
type Range struct {
	Lo, Hi int64
}

// Window is a sliding bitmap over recent sequence numbers. It grew out
// of the overlay's duplicate-suppression seqwindow and now also drives
// the ack clock: besides answering "is this sequence new?" it maintains
// the cumulative-ack point (highest seq with no gap below it) and can
// enumerate the missing ranges above it for NACK generation.
//
// It is safe for concurrent use: receive paths Add while ack/NACK timers
// read CumAck and Missing from another goroutine in the live runtime.
type Window struct {
	mu       sync.Mutex
	size     int64 // tracked span in bits, multiple of 64
	backfill int64
	base     int64 // lowest tracked seq
	top      int64 // highest seq marked so far, exclusive
	cum      int64 // cumulative point: every seq <= cum is seen
	bits     []uint64
	begun    bool
}

// NewWindow builds a window tracking size recent sequence numbers
// (rounded up to a multiple of 64; <= 0 means DefaultWindowBits) that
// accepts backfill sequence numbers below the first seq it observes.
func NewWindow(size, backfill int) *Window {
	if size <= 0 {
		size = DefaultWindowBits
	}
	sz := (int64(size) + 63) &^ 63
	bf := int64(backfill)
	if bf < 0 || bf >= sz {
		bf = 0
	}
	return &Window{size: sz, backfill: bf, bits: make([]uint64, sz/64)}
}

// Add marks seq as seen and reports whether it was new. Sequence numbers
// older than the window are treated as duplicates. Abandoning a sequence
// (NACK give-up) is also an Add: marking it seen is exactly what lets
// the cumulative point move past it.
func (w *Window) Add(seq int64) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	if !w.begun {
		w.begun = true
		w.base = seq - w.backfill
		w.top = seq
		w.cum = w.base - 1
	}
	if seq < w.base {
		return false
	}
	if seq >= w.base+w.size {
		// Slide forward so seq is the newest trackable entry.
		newBase := seq - w.size + 1
		if newBase >= w.base+w.size {
			// Jumped past the whole window: nothing tracked survives.
			for i := range w.bits {
				w.bits[i] = 0
			}
		} else {
			for s := w.base; s < newBase; s++ {
				w.clear(s)
			}
		}
		w.base = newBase
		if w.cum < w.base-1 {
			w.cum = w.base - 1
			// Re-chain through bits that were set before the slide forced
			// the cumulative point forward.
			w.advance()
		}
	}
	if w.get(seq) {
		return false
	}
	w.set(seq)
	if seq >= w.top {
		w.top = seq + 1
	}
	if seq == w.cum+1 {
		w.advance()
	}
	return true
}

// advance chains the cumulative point forward over contiguous seen
// bits. Caller holds w.mu.
func (w *Window) advance() {
	for w.cum+1 < w.top && w.get(w.cum+1) {
		w.cum++
	}
}

// CumAck returns the cumulative-ack point — the highest sequence number
// such that every sequence at or below it has been seen (or slid out of
// the window) — and whether any sequence has been observed yet.
func (w *Window) CumAck() (int64, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.cum, w.begun
}

// Seen reports whether seq has been marked (or is below the window, in
// which case it is treated as seen).
func (w *Window) Seen(seq int64) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	if !w.begun {
		return false
	}
	if seq <= w.cum || seq < w.base {
		return true
	}
	if seq >= w.top {
		return false
	}
	return w.get(seq)
}

// Missing appends to dst the gaps between the cumulative point and the
// highest sequence seen, as inclusive ranges, stopping after max ranges.
// dst is reset and reused, so callers can keep a scratch slice.
func (w *Window) Missing(dst []Range, max int) []Range {
	dst = dst[:0]
	w.mu.Lock()
	defer w.mu.Unlock()
	if !w.begun {
		return dst
	}
	for s := w.cum + 1; s < w.top && len(dst) < max; s++ {
		if w.get(s) {
			continue
		}
		lo := s
		for s+1 < w.top && !w.get(s+1) {
			s++
		}
		dst = append(dst, Range{Lo: lo, Hi: s})
	}
	return dst
}

// Top returns one past the highest sequence seen (0, false before any).
func (w *Window) Top() (int64, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.top, w.begun
}

func (w *Window) idx(seq int64) (int, uint64) {
	off := seq % w.size
	if off < 0 {
		off += w.size
	}
	return int(off / 64), 1 << uint(off%64)
}

func (w *Window) get(seq int64) bool {
	i, m := w.idx(seq)
	return w.bits[i]&m != 0
}

func (w *Window) set(seq int64) {
	i, m := w.idx(seq)
	w.bits[i] |= m
}

func (w *Window) clear(seq int64) {
	i, m := w.idx(seq)
	w.bits[i] &^= m
}
