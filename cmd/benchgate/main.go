// Command benchgate turns the data-plane bench from report-only into a
// pass/fail CI gate. It reads a BENCH_dataplane.json written by
// cmd/benchpump and exits non-zero when the batched data plane delivers
// a smaller fraction of the offered stream than the unbatched baseline —
// the one regression the batching + reliability work must never cause.
//
// The comparison is only meaningful when both passes faced the same
// offered load, so the gate insists the bench ran paced (config.rate > 0)
// and that the two passes' measured offered loads agree; a run where the
// source's emit loop throttled differently per pass proves nothing and
// fails as invalid rather than passing silently.
//
// A missing report is a skip, not a failure: fresh checkouts gate on the
// committed report, while CI regenerates it in the step before this one.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

type passStats struct {
	Mode              string  `json:"mode"`
	OfferedLoadMBps   float64 `json:"offered_load_mbps"`
	DeliveryRatio     float64 `json:"delivery_ratio"`
	GoodputMBps       float64 `json:"goodput_mbps"`
	SyscallsPerPacket float64 `json:"syscalls_per_packet"`
}

type linkKillStats struct {
	RecoveryMs          float64 `json:"recovery_ms"`
	VictimDeliveryRatio float64 `json:"victim_delivery_ratio"`
	ParentChanged       bool    `json:"parent_changed"`
}

type report struct {
	Config struct {
		Rate int `json:"rate"`
	} `json:"config"`
	Baseline passStats `json:"baseline"`
	Batched  passStats `json:"batched"`
	Capacity *struct {
		GoodputRatio           float64 `json:"goodput_ratio"`
		SyscallsPerPacketRatio float64 `json:"syscalls_per_packet_ratio"`
	} `json:"capacity,omitempty"`
	LinkKill *linkKillStats `json:"link_kill,omitempty"`
}

func main() {
	in := flag.String("in", "BENCH_dataplane.json", "benchpump report to gate on")
	slack := flag.Float64("slack", 0.02, "absolute delivery-ratio noise floor: fail only if batched < baseline - slack")
	loadTol := flag.Float64("loadtol", 0.2, "max relative offered-load mismatch between passes before the run is invalid")
	flag.Parse()

	data, err := os.ReadFile(*in)
	if err != nil {
		if os.IsNotExist(err) {
			fmt.Fprintf(os.Stderr, "benchgate: %s missing; nothing to gate (run `make bench` first)\n", *in)
			return
		}
		fatal("read %s: %v", *in, err)
	}
	var r report
	if err := json.Unmarshal(data, &r); err != nil {
		fatal("parse %s: %v", *in, err)
	}

	if r.Config.Rate <= 0 {
		fmt.Fprintf(os.Stderr, "benchgate: %s was an unpaced run (rate=0); delivery ratios are not load-matched, skipping\n", *in)
		return
	}
	base, batch := r.Baseline, r.Batched
	if base.OfferedLoadMBps <= 0 || batch.OfferedLoadMBps <= 0 {
		fatal("%s predates offered-load accounting; regenerate it", *in)
	}
	if mismatch := relDiff(base.OfferedLoadMBps, batch.OfferedLoadMBps); mismatch > *loadTol {
		fatal("offered load diverged between passes (baseline %.2f vs batched %.2f MB/s, %.0f%% apart); run invalid",
			base.OfferedLoadMBps, batch.OfferedLoadMBps, 100*mismatch)
	}

	fmt.Printf("benchgate: offered %.2f MB/s | delivery baseline %.4f vs batched %.4f | goodput %.2fx | syscalls %.2fx\n",
		base.OfferedLoadMBps, base.DeliveryRatio, batch.DeliveryRatio,
		ratio(batch.GoodputMBps, base.GoodputMBps), ratio(batch.SyscallsPerPacket, base.SyscallsPerPacket))

	failed := false
	if batch.DeliveryRatio < base.DeliveryRatio-*slack {
		fmt.Fprintf(os.Stderr, "benchgate: FAIL batched delivery %.4f < baseline %.4f (slack %.2f) at equal offered load\n",
			batch.DeliveryRatio, base.DeliveryRatio, *slack)
		failed = true
	}
	if cs := r.Capacity; cs != nil {
		// Capacity (unpaced ceiling) stays report-only: absolute
		// throughput on shared CI runners is too noisy to gate, while
		// delivery at equal offered load is a correctness property.
		fmt.Printf("benchgate: capacity %.2fx goodput, %.2fx syscalls/packet (report-only)\n",
			cs.GoodputRatio, cs.SyscallsPerPacketRatio)
	}
	if lk := r.LinkKill; lk != nil {
		fmt.Printf("benchgate: linkkill recovery %.0f ms, victim delivery %.4f, reparented=%v\n",
			lk.RecoveryMs, lk.VictimDeliveryRatio, lk.ParentChanged)
		if lk.ParentChanged {
			fmt.Fprintln(os.Stderr, "benchgate: FAIL link-kill recovery re-parented the victim; repair must not touch the tree")
			failed = true
		}
		if lk.VictimDeliveryRatio < 0.95 {
			fmt.Fprintf(os.Stderr, "benchgate: FAIL victim recovered only %.4f of the stream after link kill\n", lk.VictimDeliveryRatio)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
	fmt.Println("benchgate: OK")
}

func relDiff(a, b float64) float64 {
	d := a - b
	if d < 0 {
		d = -d
	}
	if a < b {
		a = b
	}
	return d / a
}

func ratio(num, den float64) float64 {
	if den == 0 {
		return 0
	}
	return num / den
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchgate: "+format+"\n", args...)
	os.Exit(1)
}
