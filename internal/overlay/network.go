package overlay

import (
	"vdm/internal/eventq"
	"vdm/internal/rng"
	"vdm/internal/underlay"
)

// Handler receives messages addressed to one node.
type Handler interface {
	HandleMessage(from NodeID, m Message)
}

// Network delivers messages between registered nodes over the underlay:
// each message arrives one one-way delay after it was sent. Data chunks
// are subject to the underlay's end-to-end loss; control messages are
// reliable (they stand for small retransmitted TCP exchanges, as in the
// PlanetLab implementation). The network also keeps the control/data
// counters behind the paper's overhead metric, in the Counters struct it
// shares with the live transports.
type Network struct {
	Sim *eventq.Sim
	U   underlay.Underlay

	// handlers is indexed by NodeID (simulated ids are dense slot
	// numbers); nil means not registered. A slice costs 8 bytes per slot
	// against ~50 per map entry and makes the delivery-path lookup a
	// bounds check instead of a hash probe.
	handlers []Handler
	rnd      *rng.Stream

	// adj backs the children/fosters sets of every peer on this bus (see
	// AdjPool): one shared chunk slab instead of two maps per peer.
	adj AdjPool

	ctrs Counters

	// LossEnable applies Bernoulli loss to data chunks.
	LossEnable bool

	// CtrlLossProb, when positive, drops each control message with this
	// probability — fault injection for protocol-robustness tests. The
	// default 0 models control over retransmitting transport (TCP), as
	// the PlanetLab implementation ran.
	CtrlLossProb float64

	// TraceFn, when set, observes every send (including drops) — a
	// debugging tap, not part of the protocol.
	TraceFn func(at float64, from, to NodeID, m Message)

	// probe, when set, observes every send for the engine profiler
	// (message-mix and hot-peer accounting). Unlike TraceFn it is meant
	// to stay attached for whole sessions, so implementations must be
	// cheap: a few counter bumps, no locks, no allocation.
	probe SendProbe

	// Keyed-draw mode (SetKeyedDraws): loss outcomes and delivery jitter
	// become pure functions of (seed, edge, per-edge send index) instead
	// of consuming the shared stream in send order. The sharded engine
	// requires this — values must not depend on global event interleaving
	// — and the serial engine uses it too so both produce identical runs.
	keyed     bool
	drawSeed  int64
	kj        underlay.KeyedJitter
	edgeDraws rng.CounterTable

	// freeDel recycles delivery records: every Send schedules one, so
	// without reuse delivery closures dominate a session's allocations.
	freeDel *delivery
}

// Keyed-draw stream ids (distinct per edge under the network's seed).
const (
	drawStreamData uint32 = 1
	drawStreamCtrl uint32 = 2
)

// edgeKey packs a directed edge for the per-edge draw counters.
func edgeKey(from, to NodeID) uint64 {
	return uint64(uint32(from))<<32 | uint64(uint32(to))
}

// SendProbe observes every Send on a simulated bus, including sends the
// network subsequently drops — the profiling tap behind the simulation
// flight recorder. It runs on the hot path of every message, so
// implementations must be cheap and, on a sharded bus, are per-shard
// (never shared across goroutines).
type SendProbe interface {
	ObserveSend(from, to NodeID, m Message)
}

// SetSendProbe attaches (or, with nil, detaches) the profiling tap.
func (n *Network) SetSendProbe(p SendProbe) { n.probe = p }

// SetKeyedDraws switches loss and jitter decisions to keyed draws under
// seed. The underlay must implement KeyedJitter for delivery jitter to be
// keyed as well (both built-in underlays do).
func (n *Network) SetKeyedDraws(seed int64) {
	n.keyed = true
	n.drawSeed = seed
	n.kj, _ = n.U.(underlay.KeyedJitter)
}

// delivery is one in-flight message, scheduled via the event queue's
// arg-carrying form so the hot send path allocates nothing in steady
// state.
type delivery struct {
	net      *Network
	from, to NodeID
	m        Message
	next     *delivery // free-list link
}

// deliver hands the message to its destination handler and recycles the
// record first, so a handler that sends more messages can reuse it
// immediately.
func deliver(a any) {
	d := a.(*delivery)
	n, from, to, m := d.net, d.from, d.to, d.m
	d.m = nil
	d.next = n.freeDel
	n.freeDel = d
	if h := n.handler(to); h != nil {
		h.HandleMessage(from, m)
	}
}

var _ Bus = (*Network)(nil)

// NewNetwork builds a network over u driven by sim; rnd draws chunk-loss
// outcomes.
func NewNetwork(sim *eventq.Sim, u underlay.Underlay, rnd *rng.Stream) *Network {
	return &Network{
		Sim:        sim,
		U:          u,
		rnd:        rnd,
		LossEnable: true,
	}
}

// AdjPool returns the bus-shared adjacency slab peers on this network
// store their children/fosters in.
func (n *Network) AdjPool() *AdjPool { return &n.adj }

// handler returns the handler for id, or nil.
func (n *Network) handler(id NodeID) Handler {
	if id < 0 || int(id) >= len(n.handlers) {
		return nil
	}
	return n.handlers[id]
}

// Register attaches a handler for node id.
func (n *Network) Register(id NodeID, h Handler) {
	if int(id) >= len(n.handlers) {
		want := int(id) + 1
		if min := 2 * len(n.handlers); want < min {
			want = min
		}
		grown := make([]Handler, want)
		copy(grown, n.handlers)
		n.handlers = grown
	}
	n.handlers[id] = h
}

// Unregister removes node id; in-flight messages to it are dropped at
// delivery time.
func (n *Network) Unregister(id NodeID) {
	if id >= 0 && int(id) < len(n.handlers) {
		n.handlers[id] = nil
	}
}

// IsAlive reports whether id currently has a handler.
func (n *Network) IsAlive(id NodeID) bool { return n.handler(id) != nil }

// Now returns the current virtual time in seconds.
func (n *Network) Now() float64 { return n.Sim.Now() }

// After schedules fn to run d virtual seconds from now.
func (n *Network) After(d float64, fn func()) { n.Sim.After(d, fn) }

// AfterArg schedules fn(arg) through the event queue's recycled
// arg-carrying events (see ArgBus). It uses the timer-classified form so
// the engine profiler's delivery-vs-timer split stays truthful.
func (n *Network) AfterArg(d float64, fn func(any), arg any) { n.Sim.AfterTimer(d, fn, arg) }

// Counters returns the network's shared traffic counters.
func (n *Network) Counters() *Counters { return &n.ctrs }

// Send schedules delivery of m from→to after the underlay one-way delay.
// It reports whether the destination was registered at send time (a
// transport-level failure signal, standing for a TCP reset).
func (n *Network) Send(from, to NodeID, m Message) bool {
	if n.TraceFn != nil {
		n.TraceFn(n.Sim.Now(), from, to, m)
	}
	if n.probe != nil {
		n.probe.ObserveSend(from, to, m)
	}
	var draw uint64
	if n.keyed {
		draw = n.edgeDraws.Next(edgeKey(from, to))
	}
	if _, data := m.(DataChunk); data {
		n.ctrs.Data.Add(1)
		if n.LossEnable && n.dropData(from, to, draw) {
			n.ctrs.DataDrops.Add(1)
			return true
		}
	} else {
		n.ctrs.Ctrl.Add(1)
		if n.CtrlLossProb > 0 && n.dropCtrl(from, to, draw) {
			n.ctrs.CtrlDrops.Add(1)
			return true
		}
	}
	if !n.IsAlive(to) {
		n.ctrs.Undeliver.Add(1)
		return false
	}
	del := n.freeDel
	if del == nil {
		del = &delivery{net: n}
	} else {
		n.freeDel = del.next
		del.next = nil
	}
	del.from, del.to, del.m = from, to, m
	n.Sim.AfterArg(n.delayS(from, to, draw), deliver, del)
	return true
}

func (n *Network) dropData(from, to NodeID, draw uint64) bool {
	p := n.U.LossRate(int(from), int(to))
	if n.keyed {
		return rng.KeyedBool(n.drawSeed, uint64(uint32(from)), uint64(uint32(to)), drawStreamData, draw, p)
	}
	return n.rnd.Bool(p)
}

func (n *Network) dropCtrl(from, to NodeID, draw uint64) bool {
	if n.keyed {
		return rng.KeyedBool(n.drawSeed, uint64(uint32(from)), uint64(uint32(to)), drawStreamCtrl, draw, n.CtrlLossProb)
	}
	return n.rnd.Bool(n.CtrlLossProb)
}

// delayS returns the delivery delay in seconds for this send.
func (n *Network) delayS(from, to NodeID, draw uint64) float64 {
	if n.keyed && n.kj != nil {
		return n.kj.OneWayDelayMSKeyed(int(from), int(to), draw) / 1000
	}
	return n.U.OneWayDelayMS(int(from), int(to)) / 1000
}

// Overhead returns the cumulative control-to-data message ratio, the
// paper's overhead metric. It returns 0 before any data flowed.
func (n *Network) Overhead() float64 { return n.ctrs.Overhead() }
