package underlay

import (
	"testing"

	"vdm/internal/rng"
	"vdm/internal/topology"
)

func budgetTestUnderlay(t *testing.T, sptBudget, plBudget int) *RouterUnderlay {
	t.Helper()
	ts, err := topology.GenerateTransitStub(topology.ScaledTransitStub(100), rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	ts.AssignLinkLoss(0.05, rng.New(6))
	attach := ts.AttachHosts(64, rng.New(7))
	return NewRouter(ts.Graph, attach).WithCacheBudget(sptBudget, plBudget)
}

// TestCacheBudgetBoundsResidency pins the satellite fix: with a budget
// set, the lazy SPT and path-loss caches stay bounded no matter how many
// distinct pairs are queried, and eviction never changes a value.
func TestCacheBudgetBoundsResidency(t *testing.T) {
	const sptBudget, plBudget = 4, 16
	bounded := budgetTestUnderlay(t, sptBudget, plBudget)
	unbounded := budgetTestUnderlay(t, 0, 0)

	n := bounded.NumHosts()
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			if a == b {
				continue
			}
			if got, want := bounded.BaseRTT(a, b), unbounded.BaseRTT(a, b); got != want {
				t.Fatalf("BaseRTT(%d,%d) = %v under budget, %v unbounded", a, b, got, want)
			}
			if got, want := bounded.LossRate(a, b), unbounded.LossRate(a, b); got != want {
				t.Fatalf("LossRate(%d,%d) = %v under budget, %v unbounded", a, b, got, want)
			}
			spts, pl := bounded.CacheStats()
			if spts > sptBudget {
				t.Fatalf("SPT cache grew to %d entries, budget %d", spts, sptBudget)
			}
			if pl > plBudget {
				t.Fatalf("path-loss cache grew to %d entries, budget %d", pl, plBudget)
			}
		}
	}

	// Unbudgeted: caches hold everything (the pre-existing behavior).
	spts, _ := unbounded.CacheStats()
	if spts <= sptBudget {
		t.Fatalf("unbounded SPT cache has only %d entries; test is not exercising eviction", spts)
	}
}

// TestKeyedJitterBounds checks the conservative-lookahead contract: every
// keyed delivery delay respects the advertised minimum.
func TestKeyedJitterBounds(t *testing.T) {
	u := budgetTestUnderlay(t, 0, 0).WithKeyedJitter(99, 0.1)
	min := u.MinOneWayDelayMS()
	if min <= 0 {
		t.Fatalf("MinOneWayDelayMS = %v, want > 0", min)
	}
	n := u.NumHosts()
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			if a == b {
				continue
			}
			for draw := uint64(0); draw < 8; draw++ {
				d := u.OneWayDelayMSKeyed(a, b, draw)
				if d < min {
					t.Fatalf("delay(%d,%d,%d) = %v below advertised minimum %v", a, b, draw, d, min)
				}
				if again := u.OneWayDelayMSKeyed(a, b, draw); again != d {
					t.Fatalf("keyed delay not deterministic")
				}
			}
		}
	}
}
