package sim

import (
	"math"
	"testing"
)

// TestNoChurnNoLoss: with a loss-free underlay and no churn, every chunk
// reaches every peer.
func TestNoChurnNoLoss(t *testing.T) {
	cfg := smokeConfig(VDM)
	cfg.ChurnPct = 0
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Loss > 1e-4 {
		t.Fatalf("loss %v without churn or link error", res.Loss)
	}
	if res.ReconnCount != 0 {
		t.Fatalf("%d reconnections without churn", res.ReconnCount)
	}
}

// TestChurnCausesBoundedLoss: churn produces loss, but reconnection keeps
// it small (the paper's <2% at 10% churn).
func TestChurnCausesBoundedLoss(t *testing.T) {
	cfg := smokeConfig(VDM)
	cfg.ChurnPct = 10
	cfg.DataRate = 5 // finer loss resolution
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Loss <= 0 {
		t.Fatal("no loss under churn")
	}
	if res.Loss > 0.05 {
		t.Fatalf("loss %v too high: reconnection not working?", res.Loss)
	}
}

// TestGeoSession: the synthetic-PlanetLab session produces the chapter-5
// metric set.
func TestGeoSession(t *testing.T) {
	cfg := Config{
		Seed:       3,
		Protocol:   VDM,
		Nodes:      40,
		DegreeMin:  4,
		DegreeMax:  4,
		ChurnPct:   10,
		JoinPhaseS: 300,
		IntervalS:  100,
		SettleS:    40,
		DurationS:  800,
		DataRate:   5,
		Underlay:   Geo,
		GeoUSOnly:  true,
		Validate:   true,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.InvariantErrors) > 0 {
		t.Fatalf("invariants: %v", res.InvariantErrors[:min(3, len(res.InvariantErrors))])
	}
	if res.StartupAvg <= 0 || res.StartupMax < res.StartupAvg {
		t.Fatalf("startup stats: avg %v max %v", res.StartupAvg, res.StartupMax)
	}
	if res.Stretch < 0.5 || res.Stretch > 5 {
		t.Fatalf("geo stretch %v implausible", res.Stretch)
	}
	if res.Hopcount < 1 {
		t.Fatalf("hopcount %v", res.Hopcount)
	}
	if res.Stress != 0 {
		t.Fatal("stress should be undefined (0) without a router model")
	}
	if res.UsageNorm <= 0 {
		t.Fatal("usage missing")
	}
	// Labels come from sites.
	if len(res.FinalTree) == 0 || res.FinalTree[0].ChildLabel == "" {
		t.Fatal("tree labels missing")
	}
}

// TestGeoPoolExhaustion: asking for more peers than the US pool holds is a
// clean error, not a panic.
func TestGeoPoolExhaustion(t *testing.T) {
	cfg := smokeConfig(VDM)
	cfg.Underlay = Geo
	cfg.GeoUSOnly = true
	cfg.Nodes = 1000
	if _, err := Run(cfg); err == nil {
		t.Fatal("oversubscribed site pool accepted")
	}
}

// TestBatchWorkload: the chapter-4 growth scenario measures once per
// batch and ends with everyone connected.
func TestBatchWorkload(t *testing.T) {
	cfg := Config{
		Seed:      5,
		Protocol:  VDM,
		Nodes:     60,
		BatchSize: 20,
		IntervalS: 150,
		DegreeMin: 2,
		DegreeMax: 5,
		DataRate:  1,
		RouterMin: 200,
		Validate:  true,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Samples) != 3 {
		t.Fatalf("samples = %d, want one per batch", len(res.Samples))
	}
	if res.FinalReachable < 58 {
		t.Fatalf("final reachable %d of 60", res.FinalReachable)
	}
	// Population grows across samples.
	if res.Samples[0].Tree.Alive >= res.Samples[2].Tree.Alive {
		t.Fatalf("population did not grow: %d then %d",
			res.Samples[0].Tree.Alive, res.Samples[2].Tree.Alive)
	}
}

// TestLifetimeChurnSession: the exponential-lifetime churn model drives a
// full session; continuous departures still recover via the grandparent
// rule.
func TestLifetimeChurnSession(t *testing.T) {
	cfg := smokeConfig(VDM)
	cfg.ChurnPct = 0
	cfg.MeanLifetimeS = 400
	cfg.DurationS = 1700
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.InvariantErrors) > 0 {
		t.Fatalf("invariants: %v", res.InvariantErrors[:min(3, len(res.InvariantErrors))])
	}
	if res.ReconnCount == 0 {
		t.Fatal("no reconnections despite continuous churn")
	}
	if res.FinalReachable < res.FinalAlive*3/4 {
		t.Fatalf("reachable %d of %d alive", res.FinalReachable, res.FinalAlive)
	}
	if res.Loss <= 0 || res.Loss > 0.1 {
		t.Fatalf("loss %v implausible under lifetime churn", res.Loss)
	}
}

// TestLinkLossCausesStreamLoss: chapter-4 link errors show up as loss even
// without churn.
func TestLinkLossCausesStreamLoss(t *testing.T) {
	cfg := smokeConfig(VDM)
	cfg.ChurnPct = 0
	cfg.LinkLossMax = 0.02
	cfg.DataRate = 5
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Loss <= 0 {
		t.Fatal("no loss despite link error rates")
	}
}

// TestLossMetricBuildsDifferentTree: VDM-L and VDM-D produce different
// trees on a lossy underlay; averaged over seeds, VDM-L's trees carry
// lower end-to-end loss while paying in stretch (figures 4.7/4.8). Per
// seed the heuristic is noisy, so the assertion runs on the mean of three
// repetitions.
func TestLossMetricBuildsDifferentTree(t *testing.T) {
	run := func(metric string, seed int64) *Result {
		cfg := smokeConfig(VDM)
		cfg.Seed = seed
		cfg.Nodes = 60
		cfg.ChurnPct = 0
		cfg.LinkLossMax = 0.03
		cfg.Metric = metric
		cfg.DataRate = 2
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	var dLoss, lLoss, dStretch, lStretch float64
	differ := false
	seeds := []int64{11, 22, 33}
	for _, seed := range seeds {
		d := run("delay", seed)
		l := run("loss", seed)
		dLoss += d.Loss
		lLoss += l.Loss
		dStretch += d.Stretch
		lStretch += l.Stretch
		if len(d.FinalTree) != len(l.FinalTree) {
			differ = true
			continue
		}
		for i := range d.FinalTree {
			if d.FinalTree[i] != l.FinalTree[i] {
				differ = true
				break
			}
		}
	}
	if !differ {
		t.Fatal("loss metric produced identical trees on every seed")
	}
	if lLoss >= dLoss {
		t.Fatalf("mean VDM-L loss %v not below VDM-D %v", lLoss/3, dLoss/3)
	}
	if lStretch <= dStretch {
		t.Fatalf("mean VDM-L stretch %v should exceed VDM-D %v (the trade-off)", lStretch/3, dStretch/3)
	}
}

// TestEstimatedLossMetricSession: VDM-L over the third-party loss
// estimator builds a working tree and still lands closer to oracle VDM-L
// than to ignoring loss entirely.
func TestEstimatedLossMetricSession(t *testing.T) {
	run := func(metric string) *Result {
		cfg := smokeConfig(VDM)
		cfg.Seed = 31
		cfg.Nodes = 50
		cfg.ChurnPct = 0
		cfg.LinkLossMax = 0.03
		cfg.Metric = metric
		cfg.DataRate = 2
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.InvariantErrors) > 0 {
			t.Fatalf("invariants: %v", res.InvariantErrors)
		}
		return res
	}
	est := run("loss-est")
	if est.FinalReachable < 47 {
		t.Fatalf("estimated-loss session reachable %d of 50", est.FinalReachable)
	}
	oracle := run("loss")
	// Estimation noise can only degrade the oracle, not by much.
	if est.Loss > oracle.Loss*2+0.05 {
		t.Fatalf("estimated metric loss %v far above oracle %v", est.Loss, oracle.Loss)
	}
}

// TestMSTRatioSane: the tree costs at least as much as the MST and not
// absurdly more.
func TestMSTRatioSane(t *testing.T) {
	cfg := smokeConfig(VDM)
	cfg.ChurnPct = 0
	cfg.Nodes = 30
	cfg.DegreeMin = 30
	cfg.DegreeMax = 30
	cfg.ComputeMST = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.MSTRatio < 1-1e-9 {
		t.Fatalf("tree cheaper than MST: ratio %v", res.MSTRatio)
	}
	if res.MSTRatio > 4 {
		t.Fatalf("ratio %v too far from MST", res.MSTRatio)
	}
}

// TestRefinementImprovesStretchUnderChurn: enabling VDM-R lowers stretch
// on the same scenario, at higher overhead (figures 5.28/5.30).
func TestRefinementImprovesStretchUnderChurn(t *testing.T) {
	base := func(refine float64) *Result {
		cfg := Config{
			Seed:             21,
			Protocol:         VDM,
			Nodes:            50,
			DegreeMin:        4,
			DegreeMax:        4,
			ChurnPct:         10,
			JoinPhaseS:       300,
			IntervalS:        100,
			SettleS:          40,
			DurationS:        1500,
			DataRate:         2,
			Underlay:         Geo,
			GeoUSOnly:        true,
			VDMRefinePeriodS: refine,
		}
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain := base(0)
	refined := base(120)
	if refined.Overhead <= plain.Overhead {
		t.Fatalf("refinement should cost overhead: %v vs %v", refined.Overhead, plain.Overhead)
	}
	// Stretch should not get meaningfully worse; usually it improves.
	if refined.Stretch > plain.Stretch*1.1 {
		t.Fatalf("refinement degraded stretch: %v vs %v", refined.Stretch, plain.Stretch)
	}
}

// TestHeavyChurnInvariants: a churn storm (25% per interval) must never
// corrupt the tree.
func TestHeavyChurnInvariants(t *testing.T) {
	cfg := smokeConfig(VDM)
	cfg.ChurnPct = 25
	cfg.DurationS = 1300
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.InvariantErrors) > 0 {
		t.Fatalf("invariants under churn storm: %v", res.InvariantErrors[:min(3, len(res.InvariantErrors))])
	}
	if res.FinalReachable < cfg.Nodes/2 {
		t.Fatalf("only %d reachable after churn storm", res.FinalReachable)
	}
}

// TestAllProtocolsHeavyChurnInvariants runs the storm over every protocol.
func TestAllProtocolsHeavyChurnInvariants(t *testing.T) {
	for _, p := range []ProtocolKind{HMTP, BTP, NICE, Random} {
		p := p
		t.Run(string(p), func(t *testing.T) {
			cfg := smokeConfig(p)
			cfg.ChurnPct = 20
			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.InvariantErrors) > 0 {
				t.Fatalf("invariants: %v", res.InvariantErrors[:min(3, len(res.InvariantErrors))])
			}
		})
	}
}

// TestAvgDegreeScheme: fractional average degrees produce a working tree
// with the configured mean capacity.
func TestAvgDegreeScheme(t *testing.T) {
	cfg := smokeConfig(VDM)
	cfg.AvgDegree = 1.5
	cfg.ChurnPct = 0
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalReachable < cfg.Nodes-3 {
		t.Fatalf("reachable %d of %d at avg degree 1.5", res.FinalReachable, cfg.Nodes)
	}
	// Low degree forces deep trees.
	if res.Hopcount < 3 {
		t.Fatalf("hopcount %v too shallow for degree ~1.5", res.Hopcount)
	}
}

// TestDegreeReducesHopcount: more capacity, shallower tree (figure 3.34's
// steep region).
func TestDegreeReducesHopcount(t *testing.T) {
	run := func(deg int) float64 {
		cfg := smokeConfig(VDM)
		cfg.ChurnPct = 0
		cfg.DegreeMin = deg
		cfg.DegreeMax = deg
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Hopcount
	}
	low := run(2)
	high := run(6)
	if high >= low {
		t.Fatalf("hopcount did not drop with degree: %v at 2, %v at 6", low, high)
	}
}

// TestVDMBeatsRandomOnStretch: informed placement must beat the random
// walk.
func TestVDMBeatsRandomOnStretch(t *testing.T) {
	run := func(p ProtocolKind) float64 {
		cfg := smokeConfig(p)
		cfg.ChurnPct = 0
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Stretch
	}
	if v, r := run(VDM), run(Random); v >= r {
		t.Fatalf("VDM stretch %v not below random-join %v", v, r)
	}
}

// TestStartupReconnectRelation: reconnections (grandparent-first) are on
// average no slower than full startups, as figure 5.8 vs 5.7 shows.
func TestStartupReconnectRelation(t *testing.T) {
	cfg := smokeConfig(VDM)
	cfg.Nodes = 60
	cfg.ChurnPct = 10
	cfg.DurationS = 1700
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.ReconnCount < 5 {
		t.Skipf("only %d reconnections; not enough signal", res.ReconnCount)
	}
	if res.ReconnAvg > res.StartupAvg*1.5 {
		t.Fatalf("reconnect avg %v far above startup avg %v", res.ReconnAvg, res.StartupAvg)
	}
}

// TestScenarioOverride: a caller-provided scenario drives the session.
func TestScenarioOverride(t *testing.T) {
	cfg := smokeConfig(VDM)
	base, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Re-run with the identical generated scenario made explicit: the
	// shape of the session (sample count) must match.
	cfg2 := cfg
	res, err := Run(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Samples) != len(base.Samples) {
		t.Fatalf("samples %d vs %d", len(res.Samples), len(base.Samples))
	}
}

// TestOverheadGrowsWithChurn: more churn, more maintenance messaging
// (figure 3.28's slope).
func TestOverheadGrowsWithChurn(t *testing.T) {
	run := func(churn float64) float64 {
		cfg := smokeConfig(VDM)
		cfg.ChurnPct = churn
		cfg.DurationS = 1700
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Overhead
	}
	lo, hi := run(2), run(15)
	if hi <= lo {
		t.Fatalf("overhead flat in churn: %v at 2%%, %v at 15%%", lo, hi)
	}
}

// TestFinalTreeDepthsConsistent: FinalTree depths equal the walk length to
// the source.
func TestFinalTreeDepthsConsistent(t *testing.T) {
	cfg := smokeConfig(VDM)
	cfg.ChurnPct = 0
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	parent := map[int]int{}
	for _, e := range res.FinalTree {
		parent[e.Child] = e.Parent
	}
	for _, e := range res.FinalTree {
		depth, cur := 0, e.Child
		for cur != 0 {
			p, ok := parent[cur]
			if !ok {
				t.Fatalf("edge child %d does not reach the source", e.Child)
			}
			cur = p
			depth++
			if depth > len(res.FinalTree)+1 {
				t.Fatal("cycle in final tree")
			}
		}
		if depth != e.Depth {
			t.Fatalf("edge %d: depth %d recorded, walk says %d", e.Child, e.Depth, depth)
		}
		if e.RTTms <= 0 || math.IsNaN(e.RTTms) {
			t.Fatalf("edge RTT %v", e.RTTms)
		}
	}
}
