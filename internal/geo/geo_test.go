package geo

import (
	"math"
	"testing"

	"vdm/internal/rng"
)

func testModel(t *testing.T, seed int64) *Model {
	t.Helper()
	return Generate(DefaultConfig(), rng.New(seed))
}

func TestGenerateSiteCounts(t *testing.T) {
	m := testModel(t, 1)
	want := DefaultConfig().SitesPerRegion * len(DefaultRegions())
	if m.NumSites() != want {
		t.Fatalf("sites = %d, want %d", m.NumSites(), want)
	}
	us := m.USSites()
	wantUS := DefaultConfig().SitesPerRegion * 5 // five US regions
	if len(us) != wantUS {
		t.Fatalf("US sites = %d, want %d", len(us), wantUS)
	}
	for _, id := range us {
		if !m.Sites[id].US {
			t.Fatalf("site %d in US pool but not US-based", id)
		}
	}
}

func TestGreatCircleKnownDistance(t *testing.T) {
	// San Francisco to New York is about 4130 km.
	km := GreatCircleKM(37.77, -122.42, 40.71, -74.01)
	if km < 4000 || km < 0 || km > 4300 {
		t.Fatalf("SF-NYC great-circle = %.0f km", km)
	}
	if GreatCircleKM(10, 20, 10, 20) != 0 {
		t.Fatal("distance to self not zero")
	}
}

func TestBaseRTTSymmetricAndPositive(t *testing.T) {
	m := testModel(t, 2)
	n := m.NumSites()
	for i := 0; i < n; i += 7 {
		for j := 0; j < n; j += 11 {
			a, b := m.BaseRTT(i, j), m.BaseRTT(j, i)
			if a != b {
				t.Fatalf("RTT asymmetric: %v vs %v", a, b)
			}
			if i == j && a != 0 {
				t.Fatal("self RTT not zero")
			}
			if i != j && a < 0.5 {
				t.Fatalf("RTT %v below floor", a)
			}
		}
	}
}

func TestGeographicClustering(t *testing.T) {
	m := testModel(t, 3)
	// Average intra-us-west RTT must be far below us-west↔asia-east.
	var west, asia []int
	for _, s := range m.Sites {
		switch s.Region {
		case "us-west":
			west = append(west, s.ID)
		case "asia-east":
			asia = append(asia, s.ID)
		}
	}
	intra, inter := 0.0, 0.0
	ni, nx := 0, 0
	for i := 0; i < len(west); i++ {
		for j := i + 1; j < len(west); j++ {
			intra += m.BaseRTT(west[i], west[j])
			ni++
		}
		for _, a := range asia {
			inter += m.BaseRTT(west[i], a)
			nx++
		}
	}
	intra /= float64(ni)
	inter /= float64(nx)
	if inter < 3*intra {
		t.Fatalf("no clustering: intra %.1f ms vs trans-pacific %.1f ms", intra, inter)
	}
}

func TestSampleRTTJitterStatistics(t *testing.T) {
	m := testModel(t, 4)
	rnd := rng.New(7)
	base := m.BaseRTT(0, 40)
	sum := 0.0
	const n = 2000
	for i := 0; i < n; i++ {
		v := m.SampleRTT(0, 40, rnd)
		if v <= 0 {
			t.Fatalf("sampled RTT %v", v)
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-base)/base > 0.05 {
		t.Fatalf("jitter not centred: mean %.1f vs base %.1f", mean, base)
	}
}

func TestSampleRTTNoJitterConfig(t *testing.T) {
	cfg := DefaultConfig()
	cfg.JitterSigma = 0
	m := Generate(cfg, rng.New(5))
	if m.SampleRTT(0, 1, rng.New(1)) != m.BaseRTT(0, 1) {
		t.Fatal("zero jitter should return the base RTT")
	}
}

func TestLossMatrixProperties(t *testing.T) {
	cfg := DefaultConfig()
	m := Generate(cfg, rng.New(6))
	lossy, total := 0, 0
	n := m.NumSites()
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			p := m.Loss(i, j)
			if p != m.Loss(j, i) {
				t.Fatal("loss asymmetric")
			}
			if p < 0 || p > cfg.LossMax {
				t.Fatalf("loss %v outside [0, %v]", p, cfg.LossMax)
			}
			total++
			if p > 0 {
				lossy++
			}
		}
	}
	frac := float64(lossy) / float64(total)
	if frac < cfg.LossyPairFrac/2 || frac > cfg.LossyPairFrac*1.5 {
		t.Fatalf("lossy pair fraction %.2f, configured %.2f", frac, cfg.LossyPairFrac)
	}
	if m.Loss(3, 3) != 0 {
		t.Fatal("self loss not zero")
	}
}

func TestDeterministicGeneration(t *testing.T) {
	a, b := testModel(t, 11), testModel(t, 11)
	for i := range a.Sites {
		if a.Sites[i] != b.Sites[i] {
			t.Fatalf("site %d differs", i)
		}
	}
	if a.BaseRTT(1, 50) != b.BaseRTT(1, 50) {
		t.Fatal("RTT matrix differs for same seed")
	}
}

func TestLazySitesExist(t *testing.T) {
	m := testModel(t, 12)
	lazy := 0
	for _, s := range m.Sites {
		if s.Lazy {
			lazy++
		}
	}
	frac := float64(lazy) / float64(m.NumSites())
	if frac == 0 || frac > 0.15 {
		t.Fatalf("lazy fraction %.3f implausible for config 0.05", frac)
	}
}
