package overlay

// AdjPool is a shared slab for the small (id, distance) sets every peer
// keeps: children and fosters. Per-peer Go maps cost ~300 bytes each
// even when empty — two per peer across 100k peers is real memory — and
// scatter entries across the heap. The pool instead stores entries in
// fixed-size chunks inside one growable slab, linked by int32 indices,
// so a peer's set is a 8-byte handle (head index + count) and the
// whole population's adjacency lives in a few contiguous allocations
// the GC scans without chasing pointers.
//
// Layout: each chunk holds up to adjChunkCap entries (struct-of-arrays
// inside the chunk) plus a link to the peer's next chunk. Freed chunks
// go on an intrusive free list and are reused, so steady-state churn
// (children joining and leaving) allocates nothing — pinned by
// TestAdjPoolSteadyStateAllocs.
//
// Determinism: iteration order is insertion order, which is itself a
// deterministic function of the event sequence — unlike Go map ranges,
// which are intentionally randomized. Callers that need a canonical
// order (snapshots, fanout) sort ids exactly as they did over maps, so
// swapping maps for the pool cannot change simulation output.
//
// Concurrency: a pool is confined to one Bus's execution context (the
// serial event loop, one shard's loop, or one live peer's mailbox);
// there is no locking.
type AdjPool struct {
	chunks []adjChunk
	free   int32 // head of free-chunk list, 0 if empty
	inUse  int32 // chunks currently owned by sets (for tests/stats)
}

// adjChunkCap is the entries-per-chunk capacity. Tree fanout under the
// default degree budgets is small (most peers have ≤4 children), so one
// chunk covers the common case; deep-fanout peers chain a few.
const adjChunkCap = 4

// Chunk index 0 is reserved at first use and never handed out, so 0 is
// the null index everywhere — set heads, chain links, and the free list —
// and the zero AdjSet/AdjPool values are ready to use.

type adjChunk struct {
	ids  [adjChunkCap]NodeID
	dist [adjChunkCap]float64
	n    int32
	next int32
}

// AdjSet is one peer's handle into the pool: a chunk-list head plus the
// total entry count. The zero value is an empty set.
type AdjSet struct {
	head  int32
	count int32
}

// alloc returns a cleared chunk index.
func (p *AdjPool) alloc() int32 {
	p.inUse++
	if p.free != 0 {
		i := p.free
		c := &p.chunks[i]
		p.free = c.next
		c.n = 0
		c.next = 0
		return i
	}
	if len(p.chunks) == 0 {
		// Reserve index 0 so the zero AdjSet{head: 0} cannot alias a
		// live chunk.
		p.chunks = append(p.chunks, adjChunk{})
	}
	p.chunks = append(p.chunks, adjChunk{})
	return int32(len(p.chunks) - 1)
}

// release pushes chunk i onto the free list.
func (p *AdjPool) release(i int32) {
	p.chunks[i] = adjChunk{next: p.free}
	p.free = i
	p.inUse--
}

// Len returns the number of entries in s.
func (p *AdjPool) Len(s *AdjSet) int { return int(s.count) }

// Get returns the distance stored for id and whether it is present.
func (p *AdjPool) Get(s *AdjSet, id NodeID) (float64, bool) {
	for i := s.head; i > 0; {
		c := &p.chunks[i]
		for j := int32(0); j < c.n; j++ {
			if c.ids[j] == id {
				return c.dist[j], true
			}
		}
		i = c.next
	}
	return 0, false
}

// Has reports whether id is present.
func (p *AdjPool) Has(s *AdjSet, id NodeID) bool {
	_, ok := p.Get(s, id)
	return ok
}

// Put inserts or updates id's distance.
func (p *AdjPool) Put(s *AdjSet, id NodeID, dist float64) {
	last := int32(0)
	for i := s.head; i > 0; {
		c := &p.chunks[i]
		for j := int32(0); j < c.n; j++ {
			if c.ids[j] == id {
				c.dist[j] = dist
				return
			}
		}
		last = i
		i = c.next
	}
	// Append: into the tail chunk if it has room, else a fresh chunk.
	if last != 0 && p.chunks[last].n < adjChunkCap {
		c := &p.chunks[last]
		c.ids[c.n] = id
		c.dist[c.n] = dist
		c.n++
		s.count++
		return
	}
	ni := p.alloc()
	c := &p.chunks[ni]
	c.ids[0] = id
	c.dist[0] = dist
	c.n = 1
	if last == 0 {
		s.head = ni
	} else {
		p.chunks[last].next = ni
	}
	s.count++
}

// Delete removes id if present, reporting whether it was. The last entry
// of the set's tail chunk backfills the hole, so chunks stay dense and
// an emptied tail chunk returns to the free list.
func (p *AdjPool) Delete(s *AdjSet, id NodeID) bool {
	for i := s.head; i > 0; {
		c := &p.chunks[i]
		for j := int32(0); j < c.n; j++ {
			if c.ids[j] != id {
				continue
			}
			// Find the tail chunk and its owner link.
			lastIdx, prev := s.head, int32(0)
			for p.chunks[lastIdx].next > 0 {
				prev = lastIdx
				lastIdx = p.chunks[lastIdx].next
			}
			lc := &p.chunks[lastIdx]
			c.ids[j] = lc.ids[lc.n-1]
			c.dist[j] = lc.dist[lc.n-1]
			lc.n--
			if lc.n == 0 {
				if prev == 0 {
					s.head = 0
				} else {
					p.chunks[prev].next = 0
				}
				p.release(lastIdx)
			}
			s.count--
			return true
		}
		i = c.next
	}
	return false
}

// Clear empties the set, returning all its chunks to the free list.
func (p *AdjPool) Clear(s *AdjSet) {
	for i := s.head; i > 0; {
		next := p.chunks[i].next
		p.release(i)
		i = next
	}
	s.head = 0
	s.count = 0
}

// Each calls fn for every entry in insertion order.
func (p *AdjPool) Each(s *AdjSet, fn func(id NodeID, dist float64)) {
	for i := s.head; i > 0; {
		c := &p.chunks[i]
		for j := int32(0); j < c.n; j++ {
			fn(c.ids[j], c.dist[j])
		}
		i = c.next
	}
}

// AppendIDs appends the set's ids to dst (insertion order) and returns
// it — the zero-alloc snapshot primitive callers sort when they need a
// canonical order.
func (p *AdjPool) AppendIDs(s *AdjSet, dst []NodeID) []NodeID {
	for i := s.head; i > 0; {
		c := &p.chunks[i]
		dst = append(dst, c.ids[:c.n]...)
		i = c.next
	}
	return dst
}

// ChunksInUse returns the number of live chunks (test/stats hook).
func (p *AdjPool) ChunksInUse() int { return int(p.inUse) }
