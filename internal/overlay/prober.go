package overlay

// ProbeResult maps each responsive probe target to its measured virtual
// distance. Targets that did not answer before the timeout are absent.
type ProbeResult map[NodeID]float64

// Prober manages concurrent ping rounds for one peer. Each round pings a
// set of targets in parallel, converts the measured round-trip into a
// virtual distance via the peer's metric, and invokes a completion
// callback once every target answered or the round timed out — the "N
// pings S and all children of S" step of the join procedure.
type Prober struct {
	peer     *Peer
	next     int
	sessions map[int]*probeSession

	// free recycles finished sessions (struct, pending map, and result
	// map). The result map is only valid during the round's callback —
	// every caller in-tree copies what it keeps into its own join
	// scratch — so recycling it makes a steady-state Launch allocate
	// nothing.
	free *probeSession

	// freeTO recycles round-timeout records for ArgBus scheduling.
	freeTO *probeTimeout

	// drop, set by Trim, stops finished sessions and timeout records
	// from re-entering the free lists: rounds that were in flight when
	// the peer settled would otherwise re-pin their maps for the rest of
	// the run. The next Launch clears it — a reconnecting peer probes in
	// bursts again and recycling pays once more.
	drop bool
}

// probeTimeout carries one round's timeout through an ArgBus timer.
type probeTimeout struct {
	pr    *Prober
	token int
	next  *probeTimeout
}

// probeTimeoutFire is the shared timeout callback (arg: *probeTimeout).
func probeTimeoutFire(a any) {
	to := a.(*probeTimeout)
	pr, token := to.pr, to.token
	if !pr.drop {
		to.next = pr.freeTO
		pr.freeTO = to
	}
	if s, ok := pr.sessions[token]; ok && !s.finished {
		pr.finish(token, s)
	}
}

type probeSession struct {
	pending  map[NodeID]float64 // target -> send time (s)
	results  ProbeResult
	done     func(ProbeResult)
	finished bool
	freeLink *probeSession
}

func newProber(p *Peer) *Prober {
	return &Prober{peer: p, sessions: make(map[int]*probeSession)}
}

// session returns a blank probe session, reusing a recycled one when
// available.
func (pr *Prober) session(targets int) *probeSession {
	sess := pr.free
	if sess == nil {
		sess = &probeSession{
			pending: make(map[NodeID]float64, targets),
			results: make(ProbeResult, targets),
		}
	} else {
		pr.free = sess.freeLink
		sess.freeLink = nil
		sess.finished = false
		clear(sess.pending)
		if sess.results == nil {
			// The session was recycled while its previous result map was
			// still being read by a finish callback (see finish).
			sess.results = make(ProbeResult, targets)
		} else {
			clear(sess.results)
		}
	}
	return sess
}

// Launch pings every target in parallel. done fires exactly once — when
// all targets answered, or when timeoutS elapses — with whatever distances
// were measured. Launch with no targets completes asynchronously with an
// empty result to keep caller control flow uniform.
func (pr *Prober) Launch(targets []NodeID, timeoutS float64, done func(ProbeResult)) {
	pr.next++
	pr.drop = false
	token := pr.next
	sess := pr.session(len(targets))
	sess.done = done
	pr.sessions[token] = sess

	now := pr.peer.net.Now()
	for _, t := range targets {
		if t == pr.peer.id {
			continue
		}
		if _, dup := sess.pending[t]; dup {
			continue
		}
		sess.pending[t] = now
		pr.peer.net.Send(pr.peer.id, t, Ping{Token: token})
	}
	if len(sess.pending) == 0 {
		pr.finish(token, sess)
		return
	}
	if ab := pr.peer.argBus; ab != nil {
		to := pr.freeTO
		if to == nil {
			to = &probeTimeout{pr: pr}
		} else {
			pr.freeTO = to.next
			to.next = nil
		}
		to.token = token
		ab.AfterArg(timeoutS, probeTimeoutFire, to)
		return
	}
	pr.peer.net.After(timeoutS, func() {
		if s, ok := pr.sessions[token]; ok && !s.finished {
			pr.finish(token, s)
		}
	})
}

// handlePong consumes a Pong if it belongs to an active session, returning
// whether it was consumed.
func (pr *Prober) handlePong(from NodeID, m Pong) bool {
	sess, ok := pr.sessions[m.Token]
	if !ok || sess.finished {
		return ok
	}
	sentAt, waiting := sess.pending[from]
	if !waiting {
		return true
	}
	delete(sess.pending, from)
	elapsedMS := (pr.peer.net.Now() - sentAt) * 1000
	sess.results[from] = pr.peer.Measure(from, elapsedMS)
	if len(sess.pending) == 0 {
		pr.finish(m.Token, sess)
	}
	return true
}

func (pr *Prober) finish(token int, sess *probeSession) {
	sess.finished = true
	delete(pr.sessions, token)
	done, results := sess.done, sess.results
	sess.done, sess.results = nil, nil
	if pr.drop {
		// The peer settled (Trim): let the session go to the collector
		// instead of pinning its maps.
		done(results)
		return
	}
	// Detach the result map for the duration of the callback: the
	// session is already on the free list, and a callback that launches
	// a new round would otherwise clear the map it is iterating.
	sess.freeLink = pr.free
	pr.free = sess
	done(results)
	if sess.results == nil {
		sess.results = results
	}
}

// Trim drops the recycled-session free lists and stops in-flight rounds
// from refilling them. Peers call it once their join procedure reaches
// steady state, so a population that probed heavily during a join storm
// does not pin one session's maps per peer for the rest of the run; the
// next Launch turns recycling back on.
func (pr *Prober) Trim() {
	pr.drop = true
	pr.free = nil
	pr.freeTO = nil
}
