package topology

import (
	"math"
	"testing"
	"testing/quick"

	"vdm/internal/rng"
)

func TestAddLinkRejectsSelfLoopAndDuplicates(t *testing.T) {
	g := NewGraph(3)
	if _, err := g.AddLink(1, 1, 5); err == nil {
		t.Fatal("self-loop accepted")
	}
	if _, err := g.AddLink(0, 1, 5); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddLink(1, 0, 5); err == nil {
		t.Fatal("duplicate (reversed) link accepted")
	}
	if _, err := g.AddLink(0, 7, 5); err == nil {
		t.Fatal("out-of-range link accepted")
	}
	if g.NumLinks() != 1 {
		t.Fatalf("NumLinks = %d", g.NumLinks())
	}
}

func TestConnected(t *testing.T) {
	g := NewGraph(4)
	mustLink(t, g, 0, 1, 1)
	mustLink(t, g, 1, 2, 1)
	if g.Connected() {
		t.Fatal("graph with isolated node reported connected")
	}
	mustLink(t, g, 2, 3, 1)
	if !g.Connected() {
		t.Fatal("connected graph reported disconnected")
	}
}

func mustLink(t *testing.T, g *Graph, a, b RouterID, d float64) LinkID {
	t.Helper()
	id, err := g.AddLink(a, b, d)
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func TestDijkstraSmallKnownGraph(t *testing.T) {
	// 0 --1-- 1 --1-- 2, plus a 0--2 direct link of cost 5: shortest 0→2
	// goes through 1.
	g := NewGraph(3)
	l01 := mustLink(t, g, 0, 1, 1)
	l12 := mustLink(t, g, 1, 2, 1)
	mustLink(t, g, 0, 2, 5)
	spt := g.ShortestPaths(0)
	if spt.DistMS[2] != 2 {
		t.Fatalf("dist 0→2 = %v, want 2", spt.DistMS[2])
	}
	path := spt.PathLinks(2)
	if len(path) != 2 || path[0] != l12 || path[1] != l01 {
		t.Fatalf("path 0→2 = %v, want [%d %d]", path, l12, l01)
	}
	if hc := spt.HopCount(2); hc != 2 {
		t.Fatalf("hopcount = %d", hc)
	}
	if spt.HopCount(0) != 0 {
		t.Fatal("hopcount to self should be 0")
	}
}

func TestDijkstraUnreachable(t *testing.T) {
	g := NewGraph(3)
	mustLink(t, g, 0, 1, 1)
	spt := g.ShortestPaths(0)
	if !math.IsInf(spt.DistMS[2], 1) {
		t.Fatal("unreachable node has finite distance")
	}
	if spt.PathLinks(2) != nil {
		t.Fatal("unreachable node has a path")
	}
	if spt.HopCount(2) != -1 {
		t.Fatal("unreachable hopcount should be -1")
	}
}

// floydWarshall is the brute-force oracle for the property test.
func floydWarshall(g *Graph) [][]float64 {
	n := g.NumRouters()
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
		for j := range d[i] {
			if i != j {
				d[i][j] = math.Inf(1)
			}
		}
	}
	for _, l := range g.Links() {
		if l.DelayMS < d[l.A][l.B] {
			d[l.A][l.B] = l.DelayMS
			d[l.B][l.A] = l.DelayMS
		}
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if d[i][k]+d[k][j] < d[i][j] {
					d[i][j] = d[i][k] + d[k][j]
				}
			}
		}
	}
	return d
}

func randomGraph(seed int64, n int) *Graph {
	rnd := rng.New(seed)
	g := NewGraph(n)
	for i := 1; i < n; i++ {
		_, _ = g.AddLink(RouterID(i), RouterID(rnd.Intn(i)), rnd.Uniform(1, 20))
	}
	extra := rnd.Intn(n)
	for e := 0; e < extra; e++ {
		a, b := RouterID(rnd.Intn(n)), RouterID(rnd.Intn(n))
		if a != b && !g.HasEdge(a, b) {
			_, _ = g.AddLink(a, b, rnd.Uniform(1, 20))
		}
	}
	return g
}

// Property: Dijkstra distances match Floyd-Warshall on random graphs, and
// PathLinks reconstructs a valid path whose delays sum to the distance.
func TestPropertyDijkstraMatchesBruteForce(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		n := int(sz%12) + 2
		g := randomGraph(seed, n)
		oracle := floydWarshall(g)
		for src := 0; src < n; src++ {
			spt := g.ShortestPaths(RouterID(src))
			for dst := 0; dst < n; dst++ {
				if math.Abs(spt.DistMS[dst]-oracle[src][dst]) > 1e-9 {
					return false
				}
				// Path validity: consecutive links share routers and
				// delays sum to the distance.
				if dst == src {
					continue
				}
				sum, cur := 0.0, RouterID(dst)
				for _, lid := range spt.PathLinks(RouterID(dst)) {
					l := g.Link(lid)
					sum += l.DelayMS
					switch cur {
					case l.A:
						cur = l.B
					case l.B:
						cur = l.A
					default:
						return false
					}
				}
				if cur != RouterID(src) || math.Abs(sum-spt.DistMS[dst]) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateTransitStubStructure(t *testing.T) {
	cfg := DefaultTransitStub()
	ts, err := GenerateTransitStub(cfg, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	wantRouters := cfg.TransitDomains * cfg.TransitPerDom * (1 + cfg.StubsPerTransit*cfg.StubSize)
	if got := ts.Graph.NumRouters(); got != wantRouters {
		t.Fatalf("routers = %d, want %d", got, wantRouters)
	}
	if len(ts.TransitIDs) != cfg.TransitDomains*cfg.TransitPerDom {
		t.Fatalf("transit routers = %d", len(ts.TransitIDs))
	}
	if len(ts.TransitIDs)+len(ts.StubIDs) != wantRouters {
		t.Fatal("transit + stub counts do not cover the graph")
	}
	if !ts.Graph.Connected() {
		t.Fatal("generated topology disconnected")
	}
	for _, r := range ts.TransitIDs {
		if ts.StubDomainOf(r) != -1 {
			t.Fatalf("transit router %d classified in stub %d", r, ts.StubDomainOf(r))
		}
	}
	for _, r := range ts.StubIDs {
		if ts.StubDomainOf(r) < 0 {
			t.Fatalf("stub router %d not classified", r)
		}
	}
}

func TestGenerateTransitStubDeterministic(t *testing.T) {
	a, err := GenerateTransitStub(DefaultTransitStub(), rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateTransitStub(DefaultTransitStub(), rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	if a.Graph.NumLinks() != b.Graph.NumLinks() {
		t.Fatal("same seed produced different link counts")
	}
	for i, l := range a.Graph.Links() {
		m := b.Graph.Links()[i]
		if l != m {
			t.Fatalf("link %d differs: %+v vs %+v", i, l, m)
		}
	}
}

func TestScaledTransitStubReachesMinimum(t *testing.T) {
	for _, minR := range []int{100, 784, 2000, 5000} {
		cfg := ScaledTransitStub(minR)
		if cfg.routerCount() < minR {
			t.Fatalf("ScaledTransitStub(%d) yields %d routers", minR, cfg.routerCount())
		}
	}
}

func TestAttachHostsLandOnStubs(t *testing.T) {
	ts, err := GenerateTransitStub(DefaultTransitStub(), rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	hosts := ts.AttachHosts(500, rng.New(4))
	if len(hosts) != 500 {
		t.Fatalf("attached %d hosts", len(hosts))
	}
	for _, r := range hosts {
		if ts.StubDomainOf(r) < 0 {
			t.Fatalf("host attached to transit router %d", r)
		}
	}
}

func TestAssignLinkLossRange(t *testing.T) {
	ts, err := GenerateTransitStub(DefaultTransitStub(), rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	ts.AssignLinkLoss(0.02, rng.New(5))
	nonZero := 0
	for _, l := range ts.Graph.Links() {
		if l.LossRate < 0 || l.LossRate > 0.02 {
			t.Fatalf("loss %v outside [0, 0.02]", l.LossRate)
		}
		if l.LossRate > 0 {
			nonZero++
		}
	}
	if nonZero == 0 {
		t.Fatal("no link received loss")
	}
}

func TestLinkDelayRanges(t *testing.T) {
	cfg := DefaultTransitStub()
	ts, err := GenerateTransitStub(cfg, rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range ts.Graph.Links() {
		lo, hi := cfg.StubDelayMS[0], cfg.TransitDelayMS[1]
		if l.DelayMS < lo || l.DelayMS > hi {
			t.Fatalf("link delay %v outside [%v, %v]", l.DelayMS, lo, hi)
		}
	}
}

func TestInvalidTransitStubConfig(t *testing.T) {
	_, err := GenerateTransitStub(TransitStubConfig{}, rng.New(1))
	if err == nil {
		t.Fatal("zero config accepted")
	}
}
