package overlay

import (
	"testing"
)

// TestAdjPoolBasics exercises the chunk-chained set through grow, update,
// backfill-delete and clear, checking contents and insertion order.
func TestAdjPoolBasics(t *testing.T) {
	var p AdjPool
	var s AdjSet

	// Fill past one chunk so the set chains.
	const n = adjChunkCap*2 + 1
	for i := 1; i <= n; i++ {
		p.Put(&s, NodeID(i), float64(i))
	}
	if p.Len(&s) != n {
		t.Fatalf("Len = %d, want %d", p.Len(&s), n)
	}
	if d, ok := p.Get(&s, NodeID(5)); !ok || d != 5 {
		t.Fatalf("Get(5) = %v,%v", d, ok)
	}
	p.Put(&s, NodeID(5), 50) // update must not grow
	if d, _ := p.Get(&s, NodeID(5)); d != 50 {
		t.Fatalf("update lost: Get(5) = %v", d)
	}
	if p.Len(&s) != n {
		t.Fatalf("update changed Len to %d", p.Len(&s))
	}

	// Insertion order survives a mid-set delete except for the backfilled
	// hole, and the count tracks.
	if !p.Delete(&s, NodeID(2)) || p.Delete(&s, NodeID(2)) {
		t.Fatal("Delete(2) should succeed exactly once")
	}
	got := p.AppendIDs(&s, nil)
	if len(got) != n-1 {
		t.Fatalf("after delete: %d ids, want %d", len(got), n-1)
	}
	seen := map[NodeID]bool{}
	for _, id := range got {
		seen[id] = true
	}
	for i := 1; i <= n; i++ {
		if want := i != 2; seen[NodeID(i)] != want {
			t.Fatalf("after delete: presence of %d = %v, want %v", i, seen[NodeID(i)], want)
		}
	}

	p.Clear(&s)
	if p.Len(&s) != 0 || p.ChunksInUse() != 0 {
		t.Fatalf("after Clear: len=%d inUse=%d", p.Len(&s), p.ChunksInUse())
	}
}

// TestAdjPoolSteadyStateAllocs pins the promise in the AdjPool doc
// comment: once the slab has grown to cover the working set, churn —
// children joining and leaving — allocates nothing. This is what makes
// the pool's handle-per-peer layout cheaper than maps not just in bytes
// but in GC pressure at 100k-peer scale.
func TestAdjPoolSteadyStateAllocs(t *testing.T) {
	var p AdjPool
	sets := make([]AdjSet, 8)

	churn := func() {
		for si := range sets {
			s := &sets[si]
			for i := 1; i <= adjChunkCap*3; i++ {
				p.Put(s, NodeID(si*100+i), float64(i))
			}
			for i := 1; i <= adjChunkCap*2; i++ {
				p.Delete(s, NodeID(si*100+i))
			}
			p.Clear(s)
		}
	}
	churn() // warm: grow the slab to steady-state size

	if allocs := testing.AllocsPerRun(100, churn); allocs != 0 {
		t.Fatalf("steady-state churn allocates %.1f times per cycle, want 0", allocs)
	}
}
