package vdm_test

import (
	"fmt"
	"log"

	"vdm"
)

// ExampleRun builds a small VDM multicast tree under churn and reports the
// paper's headline metrics.
func ExampleRun() {
	res, err := vdm.Run(vdm.Config{
		Seed:       1,
		Protocol:   vdm.ProtocolVDM,
		Nodes:      60,
		ChurnPct:   5,
		JoinPhaseS: 600,
		DurationS:  2000,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reachable peers: %d\n", res.Reachable)
	fmt.Printf("stretch below 4: %v\n", res.Stretch < 4)
	fmt.Printf("loss below 1%%:   %v\n", res.Loss < 0.01)
	// Output:
	// reachable peers: 60
	// stretch below 4: true
	// loss below 1%:   true
}

// ExampleRun_lossAware builds the chapter-4 loss-optimized tree (VDM-L) on
// a lossy underlay.
func ExampleRun_lossAware() {
	res, err := vdm.Run(vdm.Config{
		Seed:        2,
		Metric:      vdm.MetricLoss,
		Nodes:       40,
		JoinPhaseS:  400,
		DurationS:   1200,
		LinkLossMax: 0.02,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tree built over loss distances: %d peers reachable\n", res.Reachable)
	// Output:
	// tree built over loss distances: 40 peers reachable
}
