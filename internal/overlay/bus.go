package overlay

// Bus is the substrate a Peer runs on: message passing between node ids
// plus the clock and timers that drive the protocol state machines. Two
// implementations exist: the discrete-event *Network in this package
// (virtual time, simulated delays) and the real-clock per-peer bus of
// internal/live (wall time, real sockets). Protocol code is written once
// against this interface and runs unchanged in both worlds.
//
// Concurrency contract: every Bus callback — message delivery through a
// Handler and timer callbacks passed to After — fires serialized with
// respect to the owning peer. The simulator guarantees this globally
// (single-threaded event loop); the live runtime guarantees it per peer
// (one mailbox goroutine each). Protocol state therefore needs no locks.
type Bus interface {
	// Send transmits m from → to. It reports whether the destination was
	// known/registered at send time (a transport-level failure signal,
	// standing for a TCP reset).
	Send(from, to NodeID, m Message) bool
	// After schedules fn to run d seconds from now, serialized with the
	// owning peer's message handling.
	After(d float64, fn func())
	// Now returns the bus clock in seconds. Virtual seconds in the
	// simulator, seconds since session start in the live runtime; only
	// differences are meaningful to protocol code.
	Now() float64
	// Unregister detaches node id from the bus; subsequent sends to it
	// fail.
	Unregister(id NodeID)
}

// FanoutBus is an optional Bus capability: deliver one message to many
// destinations at once. Implementations encode the message a single time
// and retarget the bytes per destination, so a source fanning a DataChunk
// out to its children pays one marshal instead of one per child. Failed
// destinations (unknown at send time, mirroring Send returning false) are
// appended to failed, which callers may pass as a reused scratch slice.
//
// The simulator's Network deliberately does not implement FanoutBus:
// per-destination Send keeps its event stream byte-identical, and the
// encode cost it would save does not exist there.
type FanoutBus interface {
	SendFanout(from NodeID, tos []NodeID, m Message, failed []NodeID) []NodeID
}

// DepthBus is an optional Bus capability: report how many stream frames
// the underlying transport has queued toward one destination (the UDP
// coalescer's per-destination queue, the Mem transport's in-flight data
// count). The flow state machine folds this into its pushback decision
// so congestion building below the pacing layer is still visible to the
// parent. Buses without transport-level queues (the simulator) simply
// don't implement it and report an effective depth of zero.
type DepthBus interface {
	DataQueueDepth(to NodeID) int
}

// ArgBus is an optional Bus capability: schedule a timer as a shared
// callback plus argument instead of a fresh closure. The simulator's
// event queues recycle arg-carrying events through a free list, so
// protocol timers scheduled this way allocate nothing in steady state —
// which matters during join storms, when hundreds of thousands of
// timeout timers are scheduled per virtual second. Buses without the
// capability (the live runtime) take the closure path; callers must
// treat AfterArg(d, fn, arg) as semantically identical to
// After(d, func() { fn(arg) }).
type ArgBus interface {
	AfterArg(d float64, fn func(any), arg any)
}
