// Command vdmtop is the operator's view of a running VDM session. It has
// two modes, usable together:
//
// Topology mode tails a source's /tree admin route and renders the
// reconstructed multicast tree with per-peer health:
//
//	vdmtop -admin 127.0.0.1:8080            # one snapshot
//	vdmtop -admin 127.0.0.1:8080 -watch 2s  # refresh every 2 s
//
// With -edges the topology is colored by per-edge flow health from the
// source's /edges route: lossy edges red, throttled yellow, pulling
// magenta, dead inverse-red — the injected-fault hunt at a glance:
//
//	vdmtop -admin 127.0.0.1:8080 -edges
//
// Trace mode merges per-peer JSONL trace files (vdmd -trace output, or
// the per-peer sinks of a lab cluster) on the shared session clock and
// reconstructs every join procedure's descent path across the peers it
// touched, correlated by join_id:
//
//	vdmtop -traces source.jsonl,peer1.jsonl,peer2.jsonl
//	vdmtop -traces source.jsonl,peer1.jsonl -join 3:1
//
// With -chunks it instead reconstructs the dissemination path of every
// trace-tagged chunk (vdmd -tracesample) across the merged traces:
//
//	vdmtop -traces source.jsonl,peer1.jsonl -chunks
//	vdmtop -traces source.jsonl,peer1.jsonl -chunks -chunk 4200
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"vdm/internal/obs"
	"vdm/internal/obs/tree"
)

func main() {
	var (
		admin   = flag.String("admin", "", "source admin address (host:port or URL) to fetch /tree from")
		watch   = flag.Duration("watch", 0, "with -admin: refresh interval (0 = print once)")
		edges   = flag.Bool("edges", false, "with -admin: fetch /edges too and color the tree by edge flow health")
		nocolor = flag.Bool("nocolor", false, "disable ANSI colors in the edge-health view")
		traces  = flag.String("traces", "", "comma-separated per-peer JSONL trace files to merge")
		joinID  = flag.String("join", "", "with -traces: show only this join_id (e.g. 3:1)")
		chunks  = flag.Bool("chunks", false, "with -traces: show trace-tagged chunk dissemination paths instead of joins")
		chunkN  = flag.Int64("chunk", -1, "with -chunks: show only this chunk sequence")
	)
	flag.Parse()

	if *admin == "" && *traces == "" {
		fmt.Fprintln(os.Stderr, "vdmtop: need -admin <addr> and/or -traces <files>")
		os.Exit(2)
	}

	if *traces != "" {
		show := showJoins
		if *chunks {
			show = func(files []string, _ string) error { return showChunks(files, *chunkN) }
		}
		if err := show(strings.Split(*traces, ","), *joinID); err != nil {
			fmt.Fprintln(os.Stderr, "vdmtop:", err)
			os.Exit(1)
		}
	}
	if *admin != "" {
		for {
			if err := showTree(*admin, *edges, !*nocolor); err != nil {
				fmt.Fprintln(os.Stderr, "vdmtop:", err)
				if *watch == 0 {
					os.Exit(1)
				}
			}
			if *watch == 0 {
				return
			}
			time.Sleep(*watch)
		}
	}
}

// fetchJSON decodes one admin route into out.
func fetchJSON(addr, route string, out any) error {
	url := addr
	if !strings.Contains(url, "://") {
		url = "http://" + url
	}
	url = strings.TrimSuffix(url, "/") + route
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("decode %s: %w", url, err)
	}
	return nil
}

// showTree fetches one /tree snapshot (plus /edges when asked) and
// renders it.
func showTree(addr string, withEdges, color bool) error {
	var snap tree.Snapshot
	if err := fetchJSON(addr, "/tree", &snap); err != nil {
		return err
	}
	var es *tree.EdgesSnapshot
	if withEdges {
		es = &tree.EdgesSnapshot{}
		if err := fetchJSON(addr, "/edges", es); err != nil {
			return err
		}
	}
	RenderTree(os.Stdout, &snap, es, color)
	return nil
}

// edgeColors picks the ANSI escape per edge-health status. Dead renders
// inverse so a severed uplink jumps out even in a deep tree.
var edgeColors = map[string]string{
	tree.EdgeThrottled: "\x1b[33m", // yellow
	tree.EdgeLossy:     "\x1b[31m", // red
	tree.EdgePulling:   "\x1b[35m", // magenta
	tree.EdgeDead:      "\x1b[7;31m",
}

// RenderTree prints the snapshot as an indented topology plus a summary
// line per health dimension. A non-nil edges snapshot annotates every
// non-source node with its uplink edge's flow health (colored unless
// disabled) and appends the edge summary.
func RenderTree(w *os.File, snap *tree.Snapshot, es *tree.EdgesSnapshot, color bool) {
	s := snap.Summary
	fmt.Fprintf(w, "tree @ %.1fs  members=%d reachable=%d stale=%d partitioned=%d orphans=%d\n",
		snap.AtS, s.Members, s.Reachable, s.Stale, s.Partitioned, s.Orphans)
	fmt.Fprintf(w, "cost=%.1fms depth max=%d avg=%.2f stretch-proxy avg=%.2f max=%.2f fanout max=%d avg=%.2f\n",
		s.CostMS, s.MaxDepth, s.AvgDepth, s.StretchProxyAvg, s.StretchProxyMax, s.MaxFanout, s.AvgFanout)
	if snap.Exact != nil {
		fmt.Fprintf(w, "exact: stress=%.2f stretch=%.2f hopcount=%.2f usage=%.1fms\n",
			snap.Exact.Stress, snap.Exact.Stretch, snap.Exact.Hopcount, snap.Exact.UsageMS)
	}
	uplink := map[int64]tree.EdgeHealth{}
	if es != nil {
		e := es.Summary
		fmt.Fprintf(w, "edges: total=%d ok=%d throttled=%d lossy=%d pulling=%d dead=%d\n",
			e.Total, e.OK, e.Throttled, e.Lossy, e.Pulling, e.Dead)
		for _, eh := range es.Edges {
			uplink[eh.Child] = eh
		}
	}

	byID := make(map[int64]tree.PeerHealth, len(snap.Peers))
	kids := make(map[int64][]int64)
	for _, p := range snap.Peers {
		byID[p.ID] = p
		if p.ID != snap.Source && p.Parent >= 0 {
			kids[p.Parent] = append(kids[p.Parent], p.ID)
		}
	}
	for _, c := range kids {
		sort.Slice(c, func(i, j int) bool { return c[i] < c[j] })
	}
	var render func(id int64, indent string)
	render = func(id int64, indent string) {
		p, known := byID[id]
		label := fmt.Sprintf("%s%d", indent, id)
		if known && id != snap.Source {
			label += fmt.Sprintf("  rtt=%.1fms depth=%d", p.ParentRTTMS, p.Depth)
			if p.Stale {
				label += "  STALE"
			}
			if p.Partitioned {
				label += "  PARTITIONED"
			}
		}
		esc := ""
		if eh, ok := uplink[id]; ok && eh.Status != tree.EdgeOK {
			label += fmt.Sprintf("  [%s score=%.2f", eh.Status, eh.Score)
			if eh.NacksSent > 0 || eh.NacksFromChild > 0 {
				label += fmt.Sprintf(" nacks=%d/%d", eh.NacksSent, eh.NacksFromChild)
			}
			if eh.StallPulls > 0 {
				label += fmt.Sprintf(" pulls=%d", eh.StallPulls)
			}
			if eh.BaseRate > 0 && eh.RateChunksPerS < eh.BaseRate {
				label += fmt.Sprintf(" rate=%.0f/%.0f", eh.RateChunksPerS, eh.BaseRate)
			}
			label += "]"
			if color {
				esc = edgeColors[eh.Status]
			}
		}
		if esc != "" {
			fmt.Fprintf(w, "%s%s\x1b[0m\n", esc, label)
		} else {
			fmt.Fprintln(w, label)
		}
		for _, c := range kids[id] {
			render(c, indent+"  ")
		}
	}
	render(snap.Source, "")
	// Peers that report a parent the source never heard from hang off no
	// rendered node; list them so nothing silently disappears.
	shown := map[int64]bool{snap.Source: true}
	var mark func(id int64)
	mark = func(id int64) {
		for _, c := range kids[id] {
			shown[c] = true
			mark(c)
		}
	}
	mark(snap.Source)
	for _, p := range snap.Peers {
		if !shown[p.ID] {
			fmt.Fprintf(w, "~ %d detached (parent=%d stale=%v)\n", p.ID, p.Parent, p.Stale)
		}
	}
}

// mergeTraceFiles reads the JSONL files and merges them on the shared
// session clock.
func mergeTraceFiles(files []string) ([]obs.Event, error) {
	var traces [][]obs.Event
	for _, f := range files {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		fh, err := os.Open(f)
		if err != nil {
			return nil, err
		}
		evs, err := obs.ReadJSONL(fh)
		fh.Close()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", f, err)
		}
		traces = append(traces, evs)
	}
	return obs.MergeTraces(traces...), nil
}

// showJoins merges the trace files and prints every join's descent path.
func showJoins(files []string, only string) error {
	merged, err := mergeTraceFiles(files)
	if err != nil {
		return err
	}
	joins := obs.ReconstructJoins(merged)
	ids := make([]string, 0, len(joins))
	for id := range joins {
		if only != "" && id != only {
			continue
		}
		ids = append(ids, id)
	}
	if only != "" && len(ids) == 0 {
		return fmt.Errorf("join %q not found in %d traces", only, len(files))
	}
	sort.Slice(ids, func(i, j int) bool { return joins[ids[i]].Start < joins[ids[j]].Start })
	for _, id := range ids {
		printJoin(joins[id])
	}
	return nil
}

func printJoin(j *obs.JoinPath) {
	state := "in flight"
	if j.Done {
		state = fmt.Sprintf("done in %.3fs → parent %d", j.Duration, j.Parent)
	}
	fmt.Printf("join %s  node %d  %s  @%.3fs  %s\n", j.JoinID, j.Node, j.Purpose, j.Start, state)
	if j.Restarts > 0 {
		fmt.Printf("  restarts: %d\n", j.Restarts)
	}
	for i, st := range j.Path {
		mark := " "
		if st.Served {
			mark = "*" // corroborated by the queried peer's own trace
		}
		fmt.Printf("  %2d. %s node %-4d @%.3fs\n", i+1, mark, st.Node, st.T)
	}
	if len(j.Servers) > 0 {
		fmt.Printf("  served by: %v", j.Servers)
		if j.Accepted >= 0 {
			fmt.Printf("  (accepted by %d)", j.Accepted)
		}
		fmt.Println()
	}
}

// showChunks merges the trace files and prints every trace-tagged chunk's
// dissemination path, hop by hop. only < 0 shows every traced chunk.
func showChunks(files []string, only int64) error {
	merged, err := mergeTraceFiles(files)
	if err != nil {
		return err
	}
	paths := obs.ReconstructChunkPaths(merged)
	seqs := make([]int64, 0, len(paths))
	for seq := range paths {
		if only >= 0 && seq != only {
			continue
		}
		seqs = append(seqs, seq)
	}
	if only >= 0 && len(seqs) == 0 {
		return fmt.Errorf("chunk %d not traced in %d files", only, len(files))
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	for _, seq := range seqs {
		cp := paths[seq]
		fmt.Printf("chunk %d  hops=%d  max depth=%d  max latency=%.2fms\n",
			cp.Seq, len(cp.Hops), cp.MaxDepth, cp.MaxLatencyMS)
		for _, h := range cp.Hops {
			fmt.Printf("  depth %-2d  %4d → %-4d  %.2fms  @%.3fs\n",
				h.Depth, h.From, h.Node, h.LatencyMS, h.T)
		}
	}
	return nil
}
