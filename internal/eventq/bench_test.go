package eventq

import "testing"

func BenchmarkScheduleAndRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := New()
		for j := 0; j < 1000; j++ {
			s.At(float64(j%97), func() {})
		}
		s.Run(100)
	}
}

func BenchmarkSelfRescheduling(b *testing.B) {
	s := New()
	var tick func()
	n := 0
	tick = func() {
		n++
		s.After(1, tick)
	}
	s.At(0, tick)
	b.ResetTimer()
	s.Run(float64(b.N))
	if n < b.N {
		b.Fatalf("ticked %d < %d", n, b.N)
	}
}

// BenchmarkEventQ is the steady-state cycle the simulations spend their
// time in: every fired event schedules a successor. With the free list
// this runs allocation-free after warm-up.
func BenchmarkEventQ(b *testing.B) {
	s := New()
	var tick func()
	tick = func() { s.After(1, tick) }
	s.At(0, tick)
	b.ReportAllocs()
	b.ResetTimer()
	s.Run(float64(b.N))
}
