package underlay

import (
	"math"
	"sync"
	"sync/atomic"

	"vdm/internal/rng"
	"vdm/internal/topology"
)

// hostAccessMS is the one-way delay of a host's access link to its router.
// Hosts on the same router still measure a small positive RTT.
const hostAccessMS = 0.5

// sptEntry is one cached shortest-path tree plus its last-use stamp for
// budget eviction. The stamp is atomic so read hits can refresh it under
// the read lock.
type sptEntry struct {
	t    *topology.SPT
	last atomic.Uint64
}

// RouterUnderlay routes host-to-host traffic over a router graph along
// shortest-delay paths. Shortest-path trees are computed lazily per
// attachment router and cached; WithCacheBudget bounds both caches so a
// very large topology cannot hold every tree and path-loss entry at once.
//
// The deterministic query methods (BaseRTT, LossRate, PathLinks, and the
// accessors) are safe for concurrent use: the lazy SPT and path-loss
// caches are guarded so one underlay can back many concurrent sessions
// without duplicating Dijkstra work. The stream-jitter measurement
// methods (WithJitter) draw from a single random stream and must stay
// within one session's event loop; the keyed-jitter mode (WithKeyedJitter)
// is safe for concurrent use and is what the sharded engine requires.
type RouterUnderlay struct {
	g      *topology.Graph
	attach []topology.RouterID // host -> router

	// mu guards the two lazy caches below. Writes (cache misses) take the
	// full lock and re-check, so each SPT is computed exactly once.
	mu   sync.RWMutex
	spts map[topology.RouterID]*sptEntry
	// pathLoss caches end-to-end loss per (router,router) pair.
	pathLoss map[[2]topology.RouterID]float64

	// Cache budgets: 0 means unlimited. Eviction only changes what is
	// cached, never a value — evicted entries recompute deterministically.
	sptBudget      int
	pathLossBudget int
	sptClock       atomic.Uint64

	// Measurement jitter: application-level pings observe queueing and
	// processing variation on top of propagation delay.
	jitterRnd   *rng.Stream
	jitterSigma float64

	// Keyed jitter (see KeyedJitter): pure-function draws replace the
	// shared stream. RTT measurements key on a per-pair counter — each
	// pair is only ever probed from one peer's event loop at a time, but
	// the map itself needs a lock under concurrent shards.
	keyed     bool
	keyedSeed int64
	rttMu     sync.Mutex
	rttDraws  map[uint64]uint64
}

// WithJitter makes RTT *measurements* (not deliveries or base values)
// vary lognormally around the propagation RTT, modeling the queueing and
// cross-traffic variation real probes see.
func (u *RouterUnderlay) WithJitter(rnd *rng.Stream, sigma float64) *RouterUnderlay {
	u.jitterRnd = rnd
	u.jitterSigma = sigma
	u.keyed = false
	return u
}

// WithKeyedJitter switches measurement and delivery jitter to keyed
// draws under the given seed (sigma ≤ 0 means jitter-free but still
// keyed-deterministic). This is the mode both simulation engines use:
// draw values depend only on each sender's own send count per edge, so
// serial and sharded executions observe identical delays.
func (u *RouterUnderlay) WithKeyedJitter(seed int64, sigma float64) *RouterUnderlay {
	u.keyed = true
	u.keyedSeed = seed
	u.jitterSigma = sigma
	u.jitterRnd = nil
	if u.rttDraws == nil {
		u.rttDraws = make(map[uint64]uint64)
	}
	return u
}

// WithCacheBudget bounds the lazy caches: at most spts shortest-path
// trees and pathLoss loss entries stay resident, with least-recently-used
// trees evicted first. Zero leaves a cache unlimited.
func (u *RouterUnderlay) WithCacheBudget(spts, pathLoss int) *RouterUnderlay {
	u.sptBudget = spts
	u.pathLossBudget = pathLoss
	return u
}

// CacheStats reports the resident entry counts of the SPT and path-loss
// caches.
func (u *RouterUnderlay) CacheStats() (spts, pathLoss int) {
	u.mu.RLock()
	defer u.mu.RUnlock()
	return len(u.spts), len(u.pathLoss)
}

var _ Underlay = (*RouterUnderlay)(nil)
var _ KeyedJitter = (*RouterUnderlay)(nil)

// NewRouter attaches hosts to the given routers of graph g.
func NewRouter(g *topology.Graph, attach []topology.RouterID) *RouterUnderlay {
	return &RouterUnderlay{
		g:        g,
		attach:   attach,
		spts:     make(map[topology.RouterID]*sptEntry),
		pathLoss: make(map[[2]topology.RouterID]float64),
	}
}

// NumHosts reports the number of attached hosts.
func (u *RouterUnderlay) NumHosts() int { return len(u.attach) }

// NumLinks reports the number of physical links in the router graph.
func (u *RouterUnderlay) NumLinks() int { return u.g.NumLinks() }

// AttachmentRouter returns the router host h attaches to.
func (u *RouterUnderlay) AttachmentRouter(h int) topology.RouterID { return u.attach[h] }

func (u *RouterUnderlay) spt(r topology.RouterID) *topology.SPT {
	u.mu.RLock()
	e, ok := u.spts[r]
	u.mu.RUnlock()
	if ok {
		e.last.Store(u.sptClock.Add(1))
		return e.t
	}
	u.mu.Lock()
	defer u.mu.Unlock()
	if e, ok := u.spts[r]; ok {
		e.last.Store(u.sptClock.Add(1))
		return e.t // another goroutine computed it while we waited
	}
	if u.sptBudget > 0 {
		for len(u.spts) >= u.sptBudget {
			var victim topology.RouterID
			oldest := uint64(math.MaxUint64)
			for id, e := range u.spts {
				if last := e.last.Load(); last < oldest {
					oldest, victim = last, id
				}
			}
			delete(u.spts, victim)
		}
	}
	e = &sptEntry{t: u.g.ShortestPaths(r)}
	e.last.Store(u.sptClock.Add(1))
	u.spts[r] = e
	return e.t
}

// Precompute eagerly fills the SPT cache for every attachment router (up
// to the configured budget), so subsequent concurrent queries rarely take
// the write lock.
func (u *RouterUnderlay) Precompute() {
	seen := make(map[topology.RouterID]bool, len(u.attach))
	for _, r := range u.attach {
		if !seen[r] {
			seen[r] = true
			u.spt(r)
		}
	}
}

// oneWay returns the one-way host-to-host delay in ms.
func (u *RouterUnderlay) oneWay(a, b int) float64 {
	if a == b {
		return 0
	}
	ra, rb := u.attach[a], u.attach[b]
	return u.spt(ra).DistMS[rb] + 2*hostAccessMS
}

// BaseRTT returns the deterministic round-trip time in ms.
func (u *RouterUnderlay) BaseRTT(a, b int) float64 { return 2 * u.oneWay(a, b) }

// pairKey packs an ordered host pair for the RTT draw counters.
func pairKey(a, b int) uint64 { return uint64(uint32(a))<<32 | uint64(uint32(b)) }

// RTT returns one round-trip-time measurement, with lognormal jitter when
// configured.
func (u *RouterUnderlay) RTT(a, b int) float64 {
	base := u.BaseRTT(a, b)
	if u.jitterSigma <= 0 {
		return base
	}
	if u.keyed {
		u.rttMu.Lock()
		k := pairKey(a, b)
		n := u.rttDraws[k]
		u.rttDraws[k] = n + 1
		u.rttMu.Unlock()
		return base * rng.KeyedLogNormal(u.keyedSeed, uint64(uint32(a)), uint64(uint32(b)), keyedStreamRTT, n, 0, u.jitterSigma)
	}
	if u.jitterRnd == nil {
		return base
	}
	return base * u.jitterRnd.LogNormal(0, u.jitterSigma)
}

// OneWayDelayMS returns the message delivery delay in ms, with queueing
// jitter when configured (this is what makes probe measurements noisy:
// probes time actual message exchanges). In keyed mode this returns the
// jitter-free delay; keyed callers pass their draw index to
// OneWayDelayMSKeyed instead.
func (u *RouterUnderlay) OneWayDelayMS(a, b int) float64 {
	d := u.oneWay(a, b)
	if u.jitterRnd == nil || u.jitterSigma <= 0 {
		return d
	}
	return d * u.jitterRnd.LogNormal(0, u.jitterSigma)
}

// OneWayDelayMSKeyed returns the delivery delay for draw number `draw` on
// edge a→b: jitter is a pure function of (seed, edge, draw), never below
// MinOneWayDelayMS for distinct hosts.
func (u *RouterUnderlay) OneWayDelayMSKeyed(a, b int, draw uint64) float64 {
	d := u.oneWay(a, b)
	if u.keyed && u.jitterSigma > 0 {
		d *= rng.KeyedLogNormal(u.keyedSeed, uint64(uint32(a)), uint64(uint32(b)), keyedStreamDelay, draw, 0, u.jitterSigma)
	}
	if d < MinDelayFloorMS {
		d = MinDelayFloorMS
	}
	return d
}

// MinOneWayDelayMS returns the conservative lower bound on keyed delivery
// delay between distinct hosts: the smallest possible base (two hosts on
// one router: both access links) scaled by the clamped jitter minimum.
func (u *RouterUnderlay) MinOneWayDelayMS() float64 {
	min := 2 * hostAccessMS
	if u.keyed && u.jitterSigma > 0 {
		min *= math.Exp(-rng.NormalClamp * u.jitterSigma)
	}
	if min < MinDelayFloorMS {
		min = MinDelayFloorMS
	}
	return min
}

// LossRate returns the end-to-end loss probability along the routed path:
// 1 − Π(1 − loss(link)).
func (u *RouterUnderlay) LossRate(a, b int) float64 {
	if a == b {
		return 0
	}
	ra, rb := u.attach[a], u.attach[b]
	if ra == rb {
		return 0
	}
	key := [2]topology.RouterID{ra, rb}
	if ra > rb {
		key = [2]topology.RouterID{rb, ra}
	}
	u.mu.RLock()
	p, ok := u.pathLoss[key]
	u.mu.RUnlock()
	if ok {
		return p
	}
	survive := 1.0
	for _, lid := range u.spt(key[0]).PathLinks(key[1]) {
		survive *= 1 - u.g.Link(lid).LossRate
	}
	p = 1 - survive
	u.mu.Lock()
	if u.pathLossBudget > 0 && len(u.pathLoss) >= u.pathLossBudget {
		// Evict an arbitrary resident entry: which one is cached never
		// affects a value, only whether the next query recomputes it.
		for k := range u.pathLoss {
			delete(u.pathLoss, k)
			break
		}
	}
	u.pathLoss[key] = p
	u.mu.Unlock()
	return p
}

// PathLinks returns the physical links on the routed path between hosts.
func (u *RouterUnderlay) PathLinks(a, b int) []topology.LinkID {
	if a == b {
		return nil
	}
	ra, rb := u.attach[a], u.attach[b]
	if ra == rb {
		return nil
	}
	return u.spt(ra).PathLinks(rb)
}
