package obs

import (
	"strings"
	"testing"
)

// TestReconstructChunkPaths merges three peers' JSONL traces and checks a
// sampled chunk's dissemination comes back depth-ordered with per-hop
// latency — the cross-peer correlation the in-band trace tag exists for.
func TestReconstructChunkPaths(t *testing.T) {
	var b1, b2, b3 strings.Builder
	t1 := NewTracer(NewJSONLSink(&b1), "vdm", 1, func() float64 { return 10.02 })
	t2 := NewTracer(NewJSONLSink(&b2), "vdm", 2, func() float64 { return 10.05 })
	t3 := NewTracer(NewJSONLSink(&b3), "vdm", 3, func() float64 { return 10.01 })

	// Chunk 100 fans out source(0) → 1 and 3, then 1 → 2. Node 3's event
	// is written first in time but must still sort by depth then arrival.
	t3.Emit(EvChunkPath, Event{Target: 0, Seq: 100, Step: 1, Value: 10})
	t1.Emit(EvChunkPath, Event{Target: 0, Seq: 100, Step: 1, Value: 20})
	t2.Emit(EvChunkPath, Event{Target: 1, Seq: 100, Step: 2, Value: 50})
	// A second sampled chunk keeps its own path.
	t1.Emit(EvChunkPath, Event{Target: 0, Seq: 200, Step: 1, Value: 21})
	// Unrelated events are ignored.
	t1.Emit(EvJoinStart, Event{Target: 0, JoinID: "1:1"})

	read := func(b *strings.Builder) []Event {
		ev, err := ReadJSONL(strings.NewReader(b.String()))
		if err != nil {
			t.Fatal(err)
		}
		return ev
	}
	paths := ReconstructChunkPaths(MergeTraces(read(&b1), read(&b2), read(&b3)))

	if len(paths) != 2 {
		t.Fatalf("got %d paths, want 2", len(paths))
	}
	cp := paths[100]
	if cp == nil || len(cp.Hops) != 3 {
		t.Fatalf("chunk 100 path = %+v, want 3 hops", cp)
	}
	wantNodes := []int64{3, 1, 2} // depth 1 by arrival time, then depth 2
	for i, h := range cp.Hops {
		if h.Node != wantNodes[i] {
			t.Fatalf("hop %d node = %d, want %d (hops %+v)", i, h.Node, wantNodes[i], cp.Hops)
		}
	}
	if cp.Hops[2].From != 1 || cp.Hops[2].Depth != 2 {
		t.Fatalf("leaf hop = %+v, want from 1 depth 2", cp.Hops[2])
	}
	if cp.MaxDepth != 2 || cp.MaxLatencyMS != 50 {
		t.Fatalf("max depth %d latency %g, want 2 and 50", cp.MaxDepth, cp.MaxLatencyMS)
	}
	if p := paths[200]; p == nil || len(p.Hops) != 1 || p.Hops[0].Node != 1 {
		t.Fatalf("chunk 200 path = %+v", p)
	}
}

// TestChunkPathMetrics feeds trace-tagged arrivals through the metrics
// sink and checks the per-edge latency/jitter/depth families register.
func TestChunkPathMetrics(t *testing.T) {
	reg := NewRegistry()
	sink := NewMetricsSink(reg)
	sink.Emit(Event{Proto: "vdm", Node: 2, Type: EvChunkPath, Target: 1, Seq: 10, Step: 1, Value: 20})
	sink.Emit(Event{Proto: "vdm", Node: 2, Type: EvChunkPath, Target: 1, Seq: 20, Step: 1, Value: 26})
	sink.Emit(Event{Proto: "vdm", Node: 5, Type: EvChunkPath, Target: 2, Seq: 10, Step: 2, Value: 45})

	var sb strings.Builder
	reg.WritePrometheus(&sb)
	text := sb.String()
	for _, want := range []string{
		`vdm_chunk_path_latency_ms_count{from="1",node="2",proto="vdm"} 2`,
		`vdm_chunk_path_latency_ms_count{from="2",node="5",proto="vdm"} 1`,
		// Jitter needs two samples on the same edge: |26-20| = 6.
		`vdm_chunk_path_jitter_ms_sum{from="1",node="2",proto="vdm"} 6`,
		`vdm_chunk_hop_depth_count{proto="vdm"} 3`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	if strings.Contains(text, `vdm_chunk_path_jitter_ms_count{from="2"`) {
		t.Error("jitter emitted for an edge with a single sample")
	}
}
