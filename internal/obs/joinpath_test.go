package obs

import (
	"strings"
	"testing"
)

// syntheticTraces builds the three-peer scenario the docs walk through:
// node 3 joins, queries the source (0), gets redirected into child 1, and
// attaches there. Each peer's trace is a separate slice, as it would be a
// separate JSONL file in a deployment.
func syntheticTraces() (joiner, source, relay []Event) {
	jid := "3:1"
	joiner = []Event{
		{T: 1.0, Proto: "vdm", Node: 3, Type: EvJoinStart, Target: 0, Detail: "join", JoinID: jid},
		{T: 1.0, Proto: "vdm", Node: 3, Type: EvJoinStep, Target: 0, Step: 1, Detail: "join", JoinID: jid},
		{T: 1.2, Proto: "vdm", Node: 3, Type: EvJoinDecide, Target: 0, Case: "III", Value: 40, JoinID: jid},
		{T: 1.2, Proto: "vdm", Node: 3, Type: EvJoinStep, Target: 1, Step: 2, Detail: "join", JoinID: jid},
		{T: 1.4, Proto: "vdm", Node: 3, Type: EvJoinDecide, Target: 1, Case: "I", Value: 25, JoinID: jid},
		{T: 1.4, Proto: "vdm", Node: 3, Type: EvJoinConnect, Target: 1, Case: "child", JoinID: jid},
		{T: 1.6, Proto: "vdm", Node: 3, Type: EvJoinDone, Target: 1, Value: 0.6, Step: 2, Detail: "join", JoinID: jid},
	}
	source = []Event{
		{T: 1.1, Proto: "vdm", Node: 0, Type: EvInfoServed, Target: 3, JoinID: jid},
	}
	relay = []Event{
		{T: 1.3, Proto: "vdm", Node: 1, Type: EvInfoServed, Target: 3, JoinID: jid},
		{T: 1.5, Proto: "vdm", Node: 1, Type: EvConnServed, Target: 3, Case: "accept", JoinID: jid},
	}
	return
}

func TestReconstructJoinsMergesThreePeers(t *testing.T) {
	joiner, source, relay := syntheticTraces()
	merged := MergeTraces(joiner, source, relay)
	if len(merged) != len(joiner)+len(source)+len(relay) {
		t.Fatalf("merged %d events", len(merged))
	}
	for i := 1; i < len(merged); i++ {
		if merged[i].T < merged[i-1].T {
			t.Fatalf("merge not time-ordered at %d", i)
		}
	}

	joins := ReconstructJoins(merged)
	if len(joins) != 1 {
		t.Fatalf("got %d joins, want 1", len(joins))
	}
	j := joins["3:1"]
	if j == nil {
		t.Fatal("join 3:1 missing")
	}
	if j.Node != 3 || j.Purpose != "join" || !j.Done || j.Parent != 1 {
		t.Fatalf("bad join summary: %+v", j)
	}
	if j.Duration != 0.6 || j.Start != 1.0 {
		t.Fatalf("bad timing: %+v", j)
	}
	// The descent path: source first, then the child it redirected into —
	// both corroborated by the serving peers' own traces.
	if len(j.Path) != 2 || j.Path[0].Node != 0 || j.Path[1].Node != 1 {
		t.Fatalf("bad path: %+v", j.Path)
	}
	for i, st := range j.Path {
		if !st.Served {
			t.Fatalf("step %d (node %d) not corroborated", i, st.Node)
		}
	}
	if len(j.Servers) != 2 || j.Servers[0] != 0 || j.Servers[1] != 1 {
		t.Fatalf("bad servers: %v", j.Servers)
	}
	if j.Accepted != 1 {
		t.Fatalf("accepted = %d, want 1", j.Accepted)
	}
}

func TestReconstructJoinsIgnoresUncorrelatedEvents(t *testing.T) {
	joins := ReconstructJoins([]Event{
		{Type: EvJoinStart, Node: 5, Target: 0, Detail: "join"}, // no join id
		{Type: EvUDPAck, Node: 5, Value: 3},
	})
	if len(joins) != 0 {
		t.Fatalf("uncorrelated events produced joins: %v", joins)
	}
}

func TestReconstructJoinsCountsRestarts(t *testing.T) {
	jid := "4:2"
	joins := ReconstructJoins([]Event{
		{T: 1, Node: 4, Type: EvJoinStart, Target: 0, Detail: "reconnect", JoinID: jid},
		{T: 1, Node: 4, Type: EvJoinStep, Target: 0, Step: 1, JoinID: jid},
		{T: 3, Node: 4, Type: EvJoinRestart, Target: 0, Step: 1, JoinID: jid},
		{T: 3, Node: 4, Type: EvJoinStep, Target: 0, Step: 1, JoinID: jid},
	})
	j := joins[jid]
	if j == nil || j.Restarts != 1 || len(j.Path) != 2 || j.Done {
		t.Fatalf("bad restart accounting: %+v", j)
	}
}

func TestReadJSONLRoundTrip(t *testing.T) {
	var sb strings.Builder
	sink := NewJSONLSink(&sb)
	joiner, _, _ := syntheticTraces()
	for _, e := range joiner {
		sink.Emit(e)
	}
	got, err := ReadJSONL(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(joiner) {
		t.Fatalf("read %d events, want %d", len(got), len(joiner))
	}
	for i := range got {
		if got[i] != joiner[i] {
			t.Fatalf("event %d drifted: %+v != %+v", i, got[i], joiner[i])
		}
	}
}

func TestReadJSONLRejectsTornLine(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader("{\"t\":1}\n{\"t\":2,\"proto\n")); err == nil {
		t.Fatal("torn line accepted")
	}
}
