// Package vdist implements the paper's generalized "virtual distance":
// the pluggable inter-peer distance that VDM's directionality abstraction
// is computed over.
//
// The default distance is measured delay (VDM-D). Chapter 4 generalizes to
// loss rate (VDM-L): because directionality needs distances that compose
// additively along a line, loss probabilities p are mapped to the additive
// space −ln(1−p), in which the loss of a concatenated path is the sum of
// the per-segment values. A bandwidth metric and a weighted composite are
// provided as the extensions the paper sketches.
package vdist

import (
	"math"

	"vdm/internal/underlay"
)

// Metric computes virtual distances between overlay hosts as observed by a
// probe. A nil Metric means "use the measured probe RTT" — the engine then
// derives distance from actual message timing, which is exactly VDM-D.
type Metric interface {
	// Name identifies the metric ("delay", "loss", ...).
	Name() string
	// Distance returns the virtual distance between hosts a and b.
	// Implementations may include measurement noise.
	Distance(a, b int) float64
}

// Delay measures virtual distance as RTT in milliseconds (VDM-D).
type Delay struct {
	U underlay.Underlay
}

// Name returns "delay".
func (Delay) Name() string { return "delay" }

// Distance returns one RTT measurement in ms.
func (d Delay) Distance(a, b int) float64 { return d.U.RTT(a, b) }

// lossScale converts the −ln(1−p) space into numbers of the same order of
// magnitude as RTTs, purely for readability of traces.
const lossScale = 1000

// Loss measures virtual distance as path loss in the additive −ln(1−p)
// space (VDM-L). A small delay term breaks ties among loss-free paths:
// measuring loss between two peers with zero observed loss must still
// prefer the nearer one, matching the chapter-4 setup where many paths are
// loss-free.
type Loss struct {
	U underlay.Underlay
	// DelayTiebreak scales the RTT term mixed in to order loss-free
	// pairs. Zero selects the default of 0.01 (an 100 ms RTT contributes
	// like 0.1% loss).
	DelayTiebreak float64
}

// Name returns "loss".
func (Loss) Name() string { return "loss" }

// Distance returns the loss-space virtual distance between a and b.
func (l Loss) Distance(a, b int) float64 {
	p := l.U.LossRate(a, b)
	if p > 0.999 {
		p = 0.999
	}
	tie := l.DelayTiebreak
	if tie == 0 {
		tie = 0.01
	}
	return -math.Log(1-p)*lossScale + tie*l.U.BaseRTT(a, b)
}

// Bandwidth measures virtual distance as the reciprocal of an available-
// bandwidth estimate (tighter paths are "farther"). With no bandwidth model
// in the underlay, the estimate derives from base RTT: wide-area paths are
// assumed proportionally thinner, a standard TCP-throughput-style proxy.
type Bandwidth struct {
	U underlay.Underlay
}

// Name returns "bandwidth".
func (Bandwidth) Name() string { return "bandwidth" }

// Distance returns the bandwidth-space virtual distance between a and b.
func (bw Bandwidth) Distance(a, b int) float64 {
	rtt := bw.U.RTT(a, b)
	p := bw.U.LossRate(a, b)
	// Mathis et al. throughput model: bw ∝ 1/(rtt·sqrt(p)); distance is
	// its reciprocal, with a loss floor so loss-free paths stay ordered
	// by RTT.
	if p < 1e-4 {
		p = 1e-4
	}
	return rtt * math.Sqrt(p) * 100
}

// Composite mixes several metrics with weights, enabling application-
// specific trade-offs (e.g. 0.7·delay + 0.3·loss for conferencing).
type Composite struct {
	Parts   []Metric
	Weights []float64
}

// Name returns "composite".
func (Composite) Name() string { return "composite" }

// Distance returns the weighted sum of the component distances.
func (c Composite) Distance(a, b int) float64 {
	sum := 0.0
	for i, m := range c.Parts {
		w := 1.0
		if i < len(c.Weights) {
			w = c.Weights[i]
		}
		sum += w * m.Distance(a, b)
	}
	return sum
}
