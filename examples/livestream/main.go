// Livestream: the paper's motivating workload — a live video stream to a
// churning audience. Runs VDM and HMTP over identical topologies and
// scenarios and compares network efficiency and viewer experience, the
// chapter-3 head-to-head.
package main

import (
	"fmt"
	"log"

	"vdm"
)

func run(p vdm.Protocol, churn float64) *vdm.Result {
	res, err := vdm.Run(vdm.Config{
		Seed:       7,
		Protocol:   p,
		Nodes:      150,
		ChurnPct:   churn,
		JoinPhaseS: 1000,
		DurationS:  5000,
		DataRate:   2,
	})
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func main() {
	const churn = 7 // percent of the audience replaced per 400 s interval

	fmt.Printf("Live stream to 150 churning viewers (%.0f%% churn per interval)\n\n", float64(churn))
	fmt.Printf("%-22s %10s %10s\n", "", "VDM", "HMTP")
	v := run(vdm.ProtocolVDM, churn)
	h := run(vdm.ProtocolHMTP, churn)

	row := func(name string, a, b float64, format string) {
		fmt.Printf("%-22s %10s %10s\n", name, fmt.Sprintf(format, a), fmt.Sprintf(format, b))
	}
	row("stress", v.Stress, h.Stress, "%.2f")
	row("stretch", v.Stretch, h.Stretch, "%.2f")
	row("hopcount", v.Hopcount, h.Hopcount, "%.2f")
	row("loss %", v.Loss*100, h.Loss*100, "%.3f")
	row("overhead %", v.Overhead*100, h.Overhead*100, "%.3f")
	row("startup (s)", v.StartupAvg, h.StartupAvg, "%.2f")
	row("reconnect (s)", v.ReconnAvg, h.ReconnAvg, "%.2f")

	fmt.Println("\nVDM's directional placement keeps the tree shallower (hopcount,")
	fmt.Println("stretch) without HMTP's refinement messaging (overhead).")
}
